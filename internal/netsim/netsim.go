// Package netsim is the deterministic network substrate the experiments run
// on: named nodes, point-to-point links with latency/jitter/loss, network
// partitions, and the "unplugged Ethernet" fault from the paper's
// zero-window-probe experiment.
//
// netsim replaces the paper's real lab Ethernet. Messages are delivered as
// simtime events, so an experiment spanning days of protocol time (the
// two-day unplug test) runs deterministically in milliseconds.
package netsim

import (
	"fmt"
	"time"

	"pfi/internal/dist"
	"pfi/internal/message"
	"pfi/internal/simtime"
	"pfi/internal/snapshot"
	"pfi/internal/stack"
	"pfi/internal/trace"
)

// Attribute keys netsim reads/writes on messages.
const (
	AttrSrc = "netsim.src" // set by netsim on transmit
	AttrDst = "netsim.dst" // must be set by the sender's stack
)

// Broadcast is the destination meaning "every other node".
const Broadcast = "*"

// LinkConfig describes one direction-independent link.
type LinkConfig struct {
	// Latency is the base propagation delay.
	Latency time.Duration
	// Jitter adds a uniform draw in [0, Jitter) per message.
	Jitter time.Duration
	// Loss drops each message independently with this probability.
	Loss float64
}

// link is the mutable state of a configured link.
type link struct {
	cfg LinkConfig
	up  bool
}

// Stats counts world-level message outcomes.
type Stats struct {
	Sent        int
	Delivered   int
	LostRandom  int // dropped by link loss probability
	LostDown    int // dropped because a link was down or endpoint unplugged
	LostNoRoute int // dropped because no link exists
	LostCut     int // dropped by a partition
}

// World is one simulated network. Not safe for concurrent use.
type World struct {
	Sched *simtime.Scheduler
	rng   *dist.Source
	nodes map[string]*Node
	order []string // creation order, for deterministic broadcast fan-out
	links map[[2]string]*link
	def   *LinkConfig // default link config for unconnected pairs, if any
	group map[string]int
	stats Stats
	log   *trace.Log // optional wire-level log

	// inflight tracks messages captured by pending delivery closures, so a
	// snapshot can rewind their content in place (delivery consumes message
	// bytes in the receiving stack, but the closure keeps the pointer).
	inflight map[*simtime.Event]*message.Message
	// snaps is the world's snapshot roster: scheduler and world state are
	// pre-registered; rigs add their protocol layers and shared log.
	snaps *snapshot.Registry
}

// NewWorld creates an empty world with its own scheduler and a seeded
// random source.
func NewWorld(seed int64) *World {
	w := &World{
		Sched:    simtime.NewScheduler(),
		rng:      dist.NewSource(seed),
		nodes:    make(map[string]*Node),
		links:    make(map[[2]string]*link),
		group:    make(map[string]int),
		inflight: make(map[*simtime.Event]*message.Message),
	}
	w.snaps = snapshot.NewRegistry()
	w.snaps.Register("sched", w.Sched)
	w.snaps.Register("netsim", w)
	return w
}

// Snapshots returns the world's snapshot registry. The scheduler and the
// world's own state are pre-registered; world builders (rigs) register
// every stateful protocol layer and the shared trace log here.
func (w *World) Snapshots() *snapshot.Registry { return w.snaps }

// SetTrace mirrors wire events (send/deliver/drop) into l.
func (w *World) SetTrace(l *trace.Log) { w.log = l }

// Stats returns a copy of the world's counters.
func (w *World) Stats() Stats { return w.stats }

// Rand returns the world's random source (for experiment components that
// must share the deterministic stream).
func (w *World) Rand() *dist.Source { return w.rng }

// Node is one machine on the network.
type Node struct {
	name      string
	world     *World
	stk       *stack.Stack
	env       *stack.Env
	unplugged bool
}

// AddNode registers a machine. Node names must be unique.
func (w *World) AddNode(name string) (*Node, error) {
	if name == "" || name == Broadcast {
		return nil, fmt.Errorf("netsim: invalid node name %q", name)
	}
	if _, dup := w.nodes[name]; dup {
		return nil, fmt.Errorf("netsim: duplicate node %q", name)
	}
	n := &Node{
		name:  name,
		world: w,
		env:   &stack.Env{Sched: w.Sched, Node: name},
	}
	w.nodes[name] = n
	w.order = append(w.order, name)
	return n, nil
}

// MustAddNode is AddNode for experiment setup code.
func (w *World) MustAddNode(name string) *Node {
	n, err := w.AddNode(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Node looks up a machine by name.
func (w *World) Node(name string) (*Node, bool) {
	n, ok := w.nodes[name]
	return n, ok
}

// Nodes returns node names in creation order.
func (w *World) Nodes() []string { return append([]string(nil), w.order...) }

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Env returns the node's per-stack environment (scheduler + name).
func (n *Node) Env() *stack.Env { return n.env }

// World returns the owning world.
func (n *Node) World() *World { return n.world }

// SetStack attaches a protocol stack: outbound messages leaving the
// stack's bottom enter the network; inbound deliveries enter the stack's
// bottom layer.
func (n *Node) SetStack(s *stack.Stack) {
	n.stk = s
	s.OnTransmit(func(m *message.Message) error {
		return n.world.transmit(n.name, m)
	})
}

// Stack returns the attached stack (nil if none).
func (n *Node) Stack() *stack.Stack { return n.stk }

// Unplug disconnects the node's network cable: everything to or from it is
// silently lost, exactly like the paper's two-day Ethernet unplug.
func (n *Node) Unplug() { n.unplugged = true }

// Replug reconnects the cable.
func (n *Node) Replug() { n.unplugged = false }

// Unplugged reports the cable state.
func (n *Node) Unplugged() bool { return n.unplugged }

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Connect creates (or reconfigures) the bidirectional link between a and b.
func (w *World) Connect(a, b string, cfg LinkConfig) error {
	if _, ok := w.nodes[a]; !ok {
		return fmt.Errorf("netsim: unknown node %q", a)
	}
	if _, ok := w.nodes[b]; !ok {
		return fmt.Errorf("netsim: unknown node %q", b)
	}
	if a == b {
		return fmt.Errorf("netsim: cannot link %q to itself", a)
	}
	if cfg.Loss < 0 || cfg.Loss > 1 {
		return fmt.Errorf("netsim: loss probability %v out of [0,1]", cfg.Loss)
	}
	w.links[pairKey(a, b)] = &link{cfg: cfg, up: true}
	return nil
}

// ConnectAll links every pair of current nodes with cfg (a full mesh —
// the LAN the paper's machines shared).
func (w *World) ConnectAll(cfg LinkConfig) error {
	for i, a := range w.order {
		for _, b := range w.order[i+1:] {
			if err := w.Connect(a, b, cfg); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetLinkUp raises or cuts the a<->b link (link crash failures).
func (w *World) SetLinkUp(a, b string, up bool) error {
	l, ok := w.links[pairKey(a, b)]
	if !ok {
		return fmt.Errorf("netsim: no link %s<->%s", a, b)
	}
	l.up = up
	return nil
}

// Partition splits the network into the given groups: messages crossing
// group boundaries are dropped. Nodes not mentioned keep connectivity only
// among themselves (they form an implicit extra group).
func (w *World) Partition(groups ...[]string) {
	w.group = make(map[string]int)
	for gi, g := range groups {
		for _, name := range g {
			w.group[name] = gi + 1
		}
	}
}

// Heal removes any partition.
func (w *World) Heal() { w.group = make(map[string]int) }

// Partitioned reports whether a partition separates a and b.
func (w *World) Partitioned(a, b string) bool {
	return w.group[a] != w.group[b]
}

// transmit routes m from the named node, using the message's AttrDst.
func (w *World) transmit(from string, m *message.Message) error {
	dstAttr, ok := m.Attr(AttrDst)
	if !ok {
		return fmt.Errorf("netsim: message %v from %s has no destination", m.ID(), from)
	}
	dst, ok := dstAttr.(string)
	if !ok {
		return fmt.Errorf("netsim: message %v destination is %T, want string", m.ID(), dstAttr)
	}
	m.SetAttr(AttrSrc, from)
	if dst == Broadcast {
		for _, name := range w.order {
			if name == from {
				continue
			}
			w.sendOne(from, name, m.Clone())
		}
		return nil
	}
	if _, ok := w.nodes[dst]; !ok {
		return fmt.Errorf("netsim: unknown destination %q", dst)
	}
	if dst == from {
		// Loopback: never leaves the host, so it ignores cables, links,
		// and partitions — but it HAS traversed the sender's stack (and
		// any PFI layer in it), which is what lets the paper's experiment
		// drop a daemon's heartbeats to itself.
		w.stats.Sent++
		node := w.nodes[from]
		var ev *simtime.Event
		ev = w.Sched.After(0, "loopback "+from, func() {
			delete(w.inflight, ev)
			w.stats.Delivered++
			if node.stk != nil {
				_ = node.stk.Deliver(m)
			}
		})
		w.inflight[ev] = m
		return nil
	}
	w.sendOne(from, dst, m)
	return nil
}

func (w *World) sendOne(from, to string, m *message.Message) {
	w.stats.Sent++
	src := w.nodes[from]
	dst := w.nodes[to]
	if src.unplugged || dst.unplugged {
		w.drop(from, to, m, "unplugged")
		w.stats.LostDown++
		return
	}
	if w.Partitioned(from, to) {
		w.drop(from, to, m, "partitioned")
		w.stats.LostCut++
		return
	}
	l, cfg := w.linkFor(from, to)
	if l == nil && cfg == nil {
		w.drop(from, to, m, "no route")
		w.stats.LostNoRoute++
		return
	}
	if l != nil && !l.up {
		w.drop(from, to, m, "link down")
		w.stats.LostDown++
		return
	}
	c := cfg
	if l != nil {
		c = &l.cfg
	}
	if c.Loss > 0 && w.rng.Bernoulli(c.Loss) {
		w.drop(from, to, m, "random loss")
		w.stats.LostRandom++
		return
	}
	delay := c.Latency
	if c.Jitter > 0 {
		delay += time.Duration(w.rng.Uniform(0, float64(c.Jitter)))
	}
	if w.log != nil {
		w.log.Addf(w.Sched.Now(), from, "wire-send", "", uint64(m.ID()), "to "+to)
	}
	var ev *simtime.Event
	ev = w.Sched.After(delay, "deliver "+from+"->"+to, func() {
		delete(w.inflight, ev)
		// Re-check reachability at arrival: a cable pulled mid-flight
		// loses the packet.
		if w.nodes[from].unplugged || w.nodes[to].unplugged || w.Partitioned(from, to) {
			w.drop(from, to, m, "lost in flight")
			w.stats.LostDown++
			return
		}
		w.stats.Delivered++
		if w.log != nil {
			w.log.Addf(w.Sched.Now(), to, "wire-recv", "", uint64(m.ID()), "from "+from)
		}
		if dst.stk != nil {
			// Delivery errors are a node-local matter; the network does
			// not propagate them back in time to the sender.
			_ = dst.stk.Deliver(m)
		}
	})
	w.inflight[ev] = m
}

// linkFor returns the explicit link or the default config for a pair.
func (w *World) linkFor(a, b string) (*link, *LinkConfig) {
	if l, ok := w.links[pairKey(a, b)]; ok {
		return l, nil
	}
	if w.def != nil {
		return nil, w.def
	}
	return nil, nil
}

// SetDefaultLink makes unconnected node pairs reachable with cfg. Passing
// nil removes the default (unconnected pairs drop traffic).
func (w *World) SetDefaultLink(cfg *LinkConfig) { w.def = cfg }

func (w *World) drop(from, to string, m *message.Message, why string) {
	if w.log != nil {
		w.log.Addf(w.Sched.Now(), from, "wire-drop", "", uint64(m.ID()),
			fmt.Sprintf("to %s: %s", to, why))
	}
}

// --- snapshot / restore ------------------------------------------------

// linkState saves one link entry: the pointer (Connect may replace it) plus
// the fields faults toggle.
type linkState struct {
	key [2]string
	l   *link
	cfg LinkConfig
	up  bool
}

// flightState saves one in-flight message: the pending event, the message
// pointer its closure captured, and the message content at capture time.
type flightState struct {
	ev *simtime.Event
	m  *message.Message
	st message.State
}

// worldState is the world's mutable state at one instant.
type worldState struct {
	links     []linkState
	def       *LinkConfig
	group     map[string]int
	stats     Stats
	order     []string
	nodes     map[string]*Node
	unplugged []bool // aligned with order
	rngMark   uint64
	log       *trace.Log
	logLen    int
	inflight  []flightState
}

// SnapshotState captures the network substrate: topology, link and cable
// state, partition groups, counters, the random stream position, and the
// content of every message still in flight. The scheduler is registered
// separately; stacks and layers snapshot themselves.
func (w *World) SnapshotState() any {
	st := &worldState{
		def:     w.def,
		group:   make(map[string]int, len(w.group)),
		stats:   w.stats,
		order:   append([]string(nil), w.order...),
		nodes:   make(map[string]*Node, len(w.nodes)),
		rngMark: w.rng.Mark(),
		log:     w.log,
	}
	for k, v := range w.group {
		st.group[k] = v
	}
	for name, n := range w.nodes {
		st.nodes[name] = n
	}
	st.unplugged = make([]bool, len(w.order))
	for i, name := range w.order {
		st.unplugged[i] = w.nodes[name].unplugged
	}
	st.links = make([]linkState, 0, len(w.links))
	for k, l := range w.links {
		st.links = append(st.links, linkState{key: k, l: l, cfg: l.cfg, up: l.up})
	}
	if w.log != nil {
		st.logLen = w.log.Len()
	}
	st.inflight = make([]flightState, 0, len(w.inflight))
	for ev, m := range w.inflight {
		st.inflight = append(st.inflight, flightState{ev: ev, m: m, st: m.SaveState()})
	}
	return st
}

// RestoreState rewinds the world to a captured state. Links, nodes, and
// in-flight messages keep their identities (the pointers pending closures
// captured); only their mutable content rolls back.
func (w *World) RestoreState(state any) {
	st := state.(*worldState)
	w.def = st.def
	w.group = make(map[string]int, len(st.group))
	for k, v := range st.group {
		w.group[k] = v
	}
	w.stats = st.stats
	w.order = append(w.order[:0], st.order...)
	w.nodes = make(map[string]*Node, len(st.nodes))
	for name, n := range st.nodes {
		w.nodes[name] = n
	}
	for i, name := range st.order {
		w.nodes[name].unplugged = st.unplugged[i]
	}
	w.links = make(map[[2]string]*link, len(st.links))
	for _, ls := range st.links {
		ls.l.cfg, ls.l.up = ls.cfg, ls.up
		w.links[ls.key] = ls.l
	}
	w.log = st.log
	if w.log != nil {
		w.log.RestoreState(st.logLen)
	}
	w.rng.Rewind(st.rngMark)
	w.inflight = make(map[*simtime.Event]*message.Message, len(st.inflight))
	for _, fs := range st.inflight {
		fs.m.RestoreState(fs.st)
		w.inflight[fs.ev] = fs.m
	}
}

// Run executes the world until no events remain.
func (w *World) Run() int { return w.Sched.Run() }

// RunFor executes the world for d of virtual time.
func (w *World) RunFor(d time.Duration) int { return w.Sched.RunFor(d) }

// Now returns the current virtual time.
func (w *World) Now() simtime.Time { return w.Sched.Now() }
