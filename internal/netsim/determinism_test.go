// Determinism gate for the simulated world: one seed, one scenario, one
// trace — regardless of how many OS threads are replaying worlds next to
// each other. The conformance goldens and the parallel campaign engine are
// both built on this property, so it gets its own test at the netsim layer.
package netsim_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/exp"
	"pfi/internal/tcp"
	"pfi/internal/trace"
)

// replayTCP runs a fixed fault scenario in a fresh seeded world and returns
// the canonical serialization of its full trace.
func replayTCP() ([]byte, error) {
	r, err := exp.NewTCPRig(tcp.SunOS413())
	if err != nil {
		return nil, err
	}
	c, err := r.Dial(nil)
	if err != nil {
		return nil, err
	}
	if err := r.XK.PFI.SetReceiveScript(`
		if {![info exists count]} { set count 0 }
		incr count
		if {$count % 3 == 0} { xDrop cur_msg }
		if {$count % 7 == 0} { xDelay cur_msg 250 }
	`); err != nil {
		return nil, err
	}
	if err := r.StreamSegments(c, 20, 500*time.Millisecond); err != nil {
		return nil, err
	}
	r.W.RunFor(2 * time.Minute)

	var buf bytes.Buffer
	if err := trace.WriteCanonical(&buf, r.Log.Entries()); err != nil {
		return nil, err
	}
	if buf.Len() == 0 {
		return nil, fmt.Errorf("scenario produced an empty trace")
	}
	return buf.Bytes(), nil
}

// TestWorldDeterministicUnderParallelReplay replays the same seed+scenario
// 16 times through the campaign worker pool — serial and with 8 workers —
// and requires byte-identical traces everywhere.
func TestWorldDeterministicUnderParallelReplay(t *testing.T) {
	const n = 16
	var reference []byte
	for _, workers := range []int{1, 8} {
		traces := make([][]byte, n)
		errs := make([]error, n)
		err := campaign.ForEach(nil, workers, n, func(i int) {
			traces[i], errs[i] = replayTCP()
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("workers=%d replay %d: %v", workers, i, errs[i])
			}
			if !bytes.Equal(traces[0], traces[i]) {
				t.Fatalf("workers=%d: replay %d diverged from replay 0", workers, i)
			}
		}
		// The traces must also agree across pool sizes.
		if reference == nil {
			reference = traces[0]
		} else if !bytes.Equal(reference, traces[0]) {
			t.Fatalf("workers=%d: trace diverged from the serial run", workers)
		}
	}
}
