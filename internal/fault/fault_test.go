package fault

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"pfi/internal/core"
	"pfi/internal/message"
	"pfi/internal/simtime"
	"pfi/internal/stack"
)

// tinyStub: byte 0 is the type (1=HB, 2=DATA).
type tinyStub struct{}

func (tinyStub) Protocol() string { return "tiny" }

func (tinyStub) Recognize(m *message.Message) (core.Info, error) {
	b, err := m.ByteAt(0)
	if err != nil {
		return core.Info{}, err
	}
	typ := "DATA"
	if b == 1 {
		typ = "HB"
	}
	return core.Info{Type: typ, Fields: map[string]string{}}, nil
}

func (tinyStub) Generate(typ string, fields map[string]string) (*message.Message, error) {
	return nil, fmt.Errorf("tiny: no generation")
}

type rig struct {
	sched *simtime.Scheduler
	layer *core.Layer
	stk   *stack.Stack
	out   int // messages that reached the network
	in    int // messages that reached the app
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{sched: simtime.NewScheduler()}
	env := &stack.Env{Sched: r.sched, Node: "n"}
	r.layer = core.NewLayer(env, core.WithStub(tinyStub{}))
	r.stk = stack.New(env, r.layer)
	r.stk.OnTransmit(func(m *message.Message) error { r.out++; return nil })
	r.stk.OnDeliver(func(m *message.Message) error { r.in++; return nil })
	return r
}

func (r *rig) pump(t *testing.T, n int, typ byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := r.stk.Send(message.New([]byte{typ})); err != nil {
			t.Fatal(err)
		}
		if err := r.stk.Deliver(message.New([]byte{typ})); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.Run()
}

func TestSeverityOrdering(t *testing.T) {
	ms := Models()
	if len(ms) != 7 {
		t.Fatalf("Models() = %d entries, want 7", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Severity() <= ms[i-1].Severity() {
			t.Errorf("%v not more severe than %v", ms[i], ms[i-1])
		}
	}
	if !Byzantine.Covers(ProcessCrash) {
		t.Error("byzantine must cover crash")
	}
	if ProcessCrash.Covers(Byzantine) {
		t.Error("crash must not cover byzantine")
	}
	for _, m := range ms {
		if !m.Covers(m) {
			t.Errorf("%v does not cover itself", m)
		}
	}
}

// Property: Covers is a partial order (reflexive, antisymmetric,
// transitive) over valid models.
func TestPropertyCoversPartialOrder(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ma := Model(a%7) + 1
		mb := Model(b%7) + 1
		mc := Model(c%7) + 1
		if !ma.Covers(ma) {
			return false
		}
		if ma.Covers(mb) && mb.Covers(ma) && ma != mb {
			return false
		}
		if ma.Covers(mb) && mb.Covers(mc) && !ma.Covers(mc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestModelString(t *testing.T) {
	if ProcessCrash.String() != "process-crash" {
		t.Errorf("String = %q", ProcessCrash)
	}
	if Model(99).String() != "Model(99)" {
		t.Errorf("String = %q", Model(99))
	}
	if Model(99).Valid() {
		t.Error("Model(99) valid")
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{},                 // no model
		{Model: Model(42)}, // unknown model
		{Model: SendOmission, Prob: 1.5},
		{Model: SendOmission, Prob: -0.1},
		{Model: SendOmission, Start: -time.Second},
		{Model: Timing}, // missing MeanDelay
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p)
		}
	}
	good := Plan{Model: GeneralOmission, Prob: 0.5, Start: time.Second}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestProcessCrashHaltsBothDirections(t *testing.T) {
	r := newRig(t)
	plan := Plan{Model: ProcessCrash, Start: 5 * time.Second}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 3, 2) // before the crash: everything flows
	if r.out != 3 || r.in != 3 {
		t.Fatalf("pre-crash out=%d in=%d, want 3/3", r.out, r.in)
	}
	r.sched.RunFor(6 * time.Second)
	r.pump(t, 3, 2) // after the crash: silence
	if r.out != 3 || r.in != 3 {
		t.Fatalf("post-crash out=%d in=%d, want still 3/3", r.out, r.in)
	}
}

func TestSendOmissionOnlyOutbound(t *testing.T) {
	r := newRig(t)
	if err := (Plan{Model: SendOmission}).Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 5, 2)
	if r.out != 0 {
		t.Fatalf("send omission let %d out", r.out)
	}
	if r.in != 5 {
		t.Fatalf("send omission blocked receives: in=%d", r.in)
	}
}

func TestReceiveOmissionOnlyInbound(t *testing.T) {
	r := newRig(t)
	if err := (Plan{Model: ReceiveOmission}).Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 5, 2)
	if r.in != 0 {
		t.Fatalf("receive omission let %d in", r.in)
	}
	if r.out != 5 {
		t.Fatalf("receive omission blocked sends: out=%d", r.out)
	}
}

func TestGeneralOmissionProbabilistic(t *testing.T) {
	r := newRig(t)
	if err := (Plan{Model: GeneralOmission, Prob: 0.5}).Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 400, 2)
	if r.out < 120 || r.out > 280 {
		t.Fatalf("p=0.5 omission let %d/400 out", r.out)
	}
	if r.in < 120 || r.in > 280 {
		t.Fatalf("p=0.5 omission let %d/400 in", r.in)
	}
}

func TestOmissionWindowEnds(t *testing.T) {
	r := newRig(t)
	plan := Plan{Model: SendOmission, Start: time.Second, Duration: 2 * time.Second}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 1, 2) // t=0: passes
	r.sched.RunFor(1500 * time.Millisecond)
	r.pump(t, 1, 2) // t=1.5s: inside window, dropped
	r.sched.RunFor(2 * time.Second)
	r.pump(t, 1, 2) // t=3.5s: window over, passes
	if r.out != 2 {
		t.Fatalf("windowed omission let %d out, want 2", r.out)
	}
}

func TestTypeGlobRestrictsFault(t *testing.T) {
	r := newRig(t)
	plan := Plan{Model: SendOmission, TypeGlob: "HB"}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	r.pump(t, 3, 1) // heartbeats: dropped
	r.pump(t, 3, 2) // data: passes
	if r.out != 3 {
		t.Fatalf("glob-restricted omission let %d out, want 3 DATA only", r.out)
	}
}

func TestTimingFailureDelays(t *testing.T) {
	r := newRig(t)
	plan := Plan{Model: Timing, MeanDelay: 10 * time.Second}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	if err := r.stk.Send(message.New([]byte{2})); err != nil {
		t.Fatal(err)
	}
	if r.out != 0 {
		t.Fatal("timing failure forwarded immediately")
	}
	r.sched.Run()
	if r.out != 1 {
		t.Fatal("timing failure lost the message")
	}
	if r.sched.Now() < simtime.Time(9*time.Second) {
		t.Fatalf("message forwarded at %v, want ~10 s", r.sched.Now())
	}
}

func TestByzantineCorruption(t *testing.T) {
	r := newRig(t)
	plan := Plan{Model: Byzantine, Corrupt: true}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	r.stk.OnTransmit(func(m *message.Message) error {
		r.out++
		if b, _ := m.ByteAt(0); b != 2 {
			corrupted++
		}
		return nil
	})
	for i := 0; i < 100; i++ {
		if err := r.stk.Send(message.New([]byte{2})); err != nil {
			t.Fatal(err)
		}
	}
	if r.out != 100 {
		t.Fatalf("byzantine corruption dropped messages: %d", r.out)
	}
	// A random byte of a 1-byte message is always byte 0; value is random
	// over 256, so expect most messages corrupted.
	if corrupted < 50 {
		t.Fatalf("only %d/100 corrupted", corrupted)
	}
}

func TestByzantineDuplicate(t *testing.T) {
	r := newRig(t)
	plan := Plan{Model: Byzantine, Duplicate: true}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := r.stk.Send(message.New([]byte{2})); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.Run()
	if r.out != 20 {
		t.Fatalf("duplicate fault forwarded %d, want 20", r.out)
	}
}

func TestByzantineReorder(t *testing.T) {
	r := newRig(t)
	plan := Plan{Model: Byzantine, Reorder: true}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	var order []byte
	r.stk.OnTransmit(func(m *message.Message) error {
		b, _ := m.ByteAt(1)
		order = append(order, b)
		return nil
	})
	for i := byte(0); i < 10; i++ {
		if err := r.stk.Send(message.New([]byte{2, i})); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.Run()
	// Pairwise hold/LIFO-release: some inversions must appear, and at most
	// one message may remain held at the end.
	if len(order) < 9 {
		t.Fatalf("reorder lost messages: forwarded %d", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatalf("no reordering observed in %v", order)
	}
}

func TestByzantineMixedArms(t *testing.T) {
	r := newRig(t)
	plan := Plan{Model: Byzantine, Corrupt: true, Duplicate: true, Reorder: true, Prob: 0.7}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 100; i++ {
		if err := r.stk.Send(message.New([]byte{2, i})); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.Run()
	if r.out < 80 {
		t.Fatalf("mixed byzantine lost too much: %d/100+", r.out)
	}
}

func TestScriptsCompileForEveryModel(t *testing.T) {
	for _, m := range Models() {
		plan := Plan{Model: m, Prob: 0.5, Start: time.Second, Duration: time.Minute,
			TypeGlob: "HB*", MeanDelay: time.Second, DelayVariance: 100 * time.Millisecond,
			Corrupt: true, Duplicate: true, Reorder: true}
		send, recv, err := plan.Scripts()
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		if send == "" && recv == "" {
			t.Errorf("%v compiled to nothing", m)
		}
		// Install on a fresh layer to prove the Tcl parses.
		r := newRig(t)
		if err := plan.Apply(r.layer); err != nil {
			t.Errorf("%v: apply: %v", m, err)
		}
		r.pump(t, 2, 1)
	}
}

func TestLinkCrashScriptSendSideOnly(t *testing.T) {
	send, recv, err := (Plan{Model: LinkCrash, Start: time.Second}).Scripts()
	if err != nil {
		t.Fatal(err)
	}
	if send == "" || recv != "" {
		t.Fatalf("link crash scripts: send=%q recv=%q", send, recv)
	}
}

func TestCrashIgnoresDuration(t *testing.T) {
	// A process crash is permanent even if Duration is (mistakenly) set.
	r := newRig(t)
	plan := Plan{Model: ProcessCrash, Start: time.Second, Duration: time.Second}
	if err := plan.Apply(r.layer); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(10 * time.Second)
	r.pump(t, 3, 2)
	if r.out != 0 || r.in != 0 {
		t.Fatalf("crashed process resurrected: out=%d in=%d", r.out, r.in)
	}
}

func TestDefaultProbabilityIsOne(t *testing.T) {
	p := Plan{Model: SendOmission}
	send, _, err := p.Scripts()
	if err != nil {
		t.Fatal(err)
	}
	if want := "if {1} { xDrop cur_msg }"; !containsCollapsed(send, want) {
		t.Fatalf("default-prob script = %q", send)
	}
}

func containsCollapsed(s, want string) bool {
	return len(s) >= len(want) && s[:len(want)] == want
}

func TestSeverityCoversIsTotalOnList(t *testing.T) {
	ms := Models()
	for i, a := range ms {
		for j, b := range ms {
			if (i >= j) != a.Covers(b) {
				t.Errorf("Covers(%v,%v) = %v, want %v", a, b, a.Covers(b), i >= j)
			}
		}
	}
	_ = strconv.Itoa(0) // keep strconv imported if asserts change
}
