// Package fault is the failure-model library from Section 2.2 of the paper.
//
// Each Model describes one way a protocol participant may deviate from its
// specification: crash, link crash, send/receive/general omission, timing,
// or arbitrary (byzantine) behaviour. A Plan parameterizes a model and
// compiles it into PFI filter scripts, so "testing a different failure
// scenario is accomplished simply by invoking different scripts".
//
// Models are ordered by severity: a protocol implementation that tolerates
// failures of a more severe model also tolerates the less severe ones
// (the faulty behaviours of the weaker model are a subset of the stronger).
package fault

import (
	"fmt"
	"strings"
	"time"

	"pfi/internal/core"
)

// Model enumerates the failure models of Section 2.2, in increasing order
// of severity.
type Model int

const (
	// ProcessCrash halts a process prematurely; it behaves correctly until
	// then and does nothing afterwards.
	ProcessCrash Model = iota + 1
	// LinkCrash makes a link lose all messages from some point on, without
	// delaying, duplicating, or corrupting anything before that.
	LinkCrash
	// SendOmission makes a process intermittently omit sending messages.
	SendOmission
	// ReceiveOmission makes a process intermittently omit receiving
	// messages that were sent to it.
	ReceiveOmission
	// GeneralOmission combines send and receive omission.
	GeneralOmission
	// Timing makes a process or link violate its timing specification
	// (too slow or too fast).
	Timing
	// Byzantine allows arbitrary behaviour: spurious messages, corruption,
	// duplication, and reordering.
	Byzantine
)

var modelNames = map[Model]string{
	ProcessCrash:    "process-crash",
	LinkCrash:       "link-crash",
	SendOmission:    "send-omission",
	ReceiveOmission: "receive-omission",
	GeneralOmission: "general-omission",
	Timing:          "timing",
	Byzantine:       "byzantine",
}

// String implements fmt.Stringer.
func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Valid reports whether m is a defined model.
func (m Model) Valid() bool { return m >= ProcessCrash && m <= Byzantine }

// Severity returns the model's rank in the paper's ordering (higher is
// more severe).
func (m Model) Severity() int { return int(m) }

// Covers reports whether tolerating failures of model m implies tolerating
// failures of model other — i.e. other's faulty behaviours are a subset of
// m's. The paper presents the models in a total severity order.
func (m Model) Covers(other Model) bool {
	return m.Valid() && other.Valid() && m.Severity() >= other.Severity()
}

// Plan parameterizes a failure model for injection into one PFI layer.
// The zero value of each field means "use the model's default".
type Plan struct {
	// Model selects the failure model. Required.
	Model Model

	// Prob is the per-message fault probability for omission and byzantine
	// models. Defaults to 1 (every message).
	Prob float64

	// Start delays activation: the participant behaves correctly until
	// this much virtual time has elapsed (measured by the `now` command).
	// This is what makes crash failures "correct until they halt".
	Start time.Duration

	// Duration bounds the faulty period (0 = forever). Omission and timing
	// faults stop after Start+Duration; crashes never recover.
	Duration time.Duration

	// TypeGlob restricts the fault to message types matching this Tcl glob
	// pattern (empty = all messages).
	TypeGlob string

	// MeanDelay/DelayVariance parameterize timing failures (milliseconds).
	MeanDelay     time.Duration
	DelayVariance time.Duration

	// Corrupt, Duplicate, Reorder enable the byzantine sub-behaviours
	// (corruption flips a byte, duplication forwards an extra copy,
	// reordering holds then LIFO-releases pairs). At least one must be set
	// for Byzantine plans; all default to corruption-only when none are.
	Corrupt   bool
	Duplicate bool
	Reorder   bool
}

// Validate checks the plan's parameters.
func (p Plan) Validate() error {
	if !p.Model.Valid() {
		return fmt.Errorf("fault: invalid model %v", p.Model)
	}
	if p.Prob < 0 || p.Prob > 1 {
		return fmt.Errorf("fault: probability %v out of [0,1]", p.Prob)
	}
	if p.Start < 0 || p.Duration < 0 || p.MeanDelay < 0 || p.DelayVariance < 0 {
		return fmt.Errorf("fault: negative duration parameter")
	}
	if p.Model == Timing && p.MeanDelay == 0 {
		return fmt.Errorf("fault: timing failure needs MeanDelay")
	}
	return nil
}

func (p Plan) prob() float64 {
	if p.Prob == 0 {
		return 1
	}
	return p.Prob
}

// guard renders the activation window + type filter + probability test as
// a Tcl condition. A fault acts only when the guard is true.
func (p Plan) guard() string {
	var conds []string
	if p.Start > 0 {
		conds = append(conds, fmt.Sprintf("[now] >= %d", p.Start.Milliseconds()))
	}
	if p.Duration > 0 {
		end := p.Start + p.Duration
		conds = append(conds, fmt.Sprintf("[now] < %d", end.Milliseconds()))
	}
	if p.TypeGlob != "" {
		conds = append(conds, fmt.Sprintf("[string match {%s} [msg_type cur_msg]]", p.TypeGlob))
	}
	if pr := p.prob(); pr < 1 {
		conds = append(conds, fmt.Sprintf("[coin %g]", pr))
	}
	if len(conds) == 0 {
		return "1"
	}
	return strings.Join(conds, " && ")
}

// Scripts compiles the plan into (sendScript, receiveScript) Tcl sources.
// An empty script means "leave that filter alone".
func (p Plan) Scripts() (send, recv string, err error) {
	if err := p.Validate(); err != nil {
		return "", "", err
	}
	drop := fmt.Sprintf("if {%s} { xDrop cur_msg }\n", p.guard())
	switch p.Model {
	case ProcessCrash:
		// A crashed process neither sends nor receives. Crashes never
		// recover, so Duration is ignored.
		crash := p
		crash.Duration = 0
		crashDrop := fmt.Sprintf("if {%s} { xDrop cur_msg }\n", crash.guard())
		return crashDrop, crashDrop, nil
	case LinkCrash:
		// The link loses messages in transit: model at the sender's wire
		// side. Like a crash, a dead link stays dead unless Duration says
		// otherwise (an operator replacing the cable).
		return drop, "", nil
	case SendOmission:
		return drop, "", nil
	case ReceiveOmission:
		return "", drop, nil
	case GeneralOmission:
		return drop, drop, nil
	case Timing:
		delay := fmt.Sprintf(
			"if {%s} { xDelay cur_msg [expr {abs([dst_normal %d %d])}] }\n",
			p.guard(), p.MeanDelay.Milliseconds(), p.DelayVariance.Milliseconds())
		return delay, delay, nil
	case Byzantine:
		return p.byzantineScript(), p.byzantineScript(), nil
	default:
		return "", "", fmt.Errorf("fault: unhandled model %v", p.Model)
	}
}

func (p Plan) byzantineScript() string {
	corrupt, duplicate, reorder := p.Corrupt, p.Duplicate, p.Reorder
	if !corrupt && !duplicate && !reorder {
		corrupt = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "if {%s} {\n", p.guard())
	var arms []string
	if corrupt {
		arms = append(arms, `
		set len [msg_len cur_msg]
		if {$len > 0} {
			msg_set_byte cur_msg [rand_int $len] [rand_int 256]
		}`)
	}
	if duplicate {
		arms = append(arms, `
		xDuplicate cur_msg 1`)
	}
	if reorder {
		arms = append(arms, `
		xHold cur_msg
		if {[held_count] >= 2} { xReleaseLIFO }`)
	}
	// Pick one arm per message, uniformly.
	fmt.Fprintf(&b, "\tswitch [rand_int %d] {\n", len(arms))
	for i, arm := range arms {
		fmt.Fprintf(&b, "\t%d {%s\n\t}\n", i, arm)
	}
	b.WriteString("\t}\n}\n")
	return b.String()
}

// Apply compiles the plan and installs the scripts on the PFI layer.
// Filters whose script would be empty are left untouched, so plans for
// different directions compose on one layer.
func (p Plan) Apply(l *core.Layer) error {
	send, recv, err := p.Scripts()
	if err != nil {
		return err
	}
	if send != "" {
		if err := l.SetSendScript(send); err != nil {
			return fmt.Errorf("fault: %v send script: %w", p.Model, err)
		}
	}
	if recv != "" {
		if err := l.SetReceiveScript(recv); err != nil {
			return fmt.Errorf("fault: %v receive script: %w", p.Model, err)
		}
	}
	return nil
}

// Models returns all defined models in severity order.
func Models() []Model {
	return []Model{
		ProcessCrash, LinkCrash, SendOmission, ReceiveOmission,
		GeneralOmission, Timing, Byzantine,
	}
}
