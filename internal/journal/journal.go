// Package journal is the crash-safety spine for long sweeps: an
// append-only, length-prefixed, checksummed write-ahead log that
// campaign and explore runs stream completed work into, so a killed
// process resumes from its last record instead of discarding hours of
// verdicts, corpus, and findings.
//
// On-disk layout is a fixed magic header followed by frames:
//
//	8 bytes  magic "PFIJRNL1"
//	frame*   uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// Each payload is a versioned JSON envelope {"v":1,"type":...,"data":...}.
// Open truncates a torn tail (partial frame, bad checksum, bad envelope)
// back to the last durable record — the write-ahead contract: a record
// is either fully present and checksummed or it never happened. The
// format is pinned by goldens in testdata like the fleet wire protocol.
//
// Appends are a single contiguous write each (no fsync per record; the
// page cache makes kill -9 safe and power-loss merely lossy-but-
// consistent). Sync flushes to stable storage at drain points, and
// Checkpoint atomically compacts the log (write temp, fsync, rename) so
// unbounded runs keep bounded logs. A write failure surfaces as a
// *Fault classified as a tool fault by the harden taxonomy — never a
// silent drop.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pfi/internal/harden"
)

// FormatVersion stamps every record envelope; readers reject records
// from a future format rather than misparse them.
const FormatVersion = 1

// magic identifies a journal file; the trailing digit is the layout
// version (frame encoding), distinct from the per-record FormatVersion.
var magic = []byte("PFIJRNL1")

// MaxRecord bounds a single record payload (16 MiB, matching the fleet
// frame bound). A length prefix beyond it is corruption, not a record —
// the parser must never over-read or over-allocate on hostile input.
const MaxRecord = 16 << 20

const frameHeader = 8 // uint32 length + uint32 crc

// Record is one durable unit of work: a type tag and its payload.
type Record struct {
	V    int             `json:"v"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Fault wraps a journal I/O failure. It classifies as a tool fault
// under the harden taxonomy: losing the crash-safety log is harness
// breakage, and callers must surface it, never drop work silently.
type Fault struct {
	Op  string
	Err error
}

func (f *Fault) Error() string { return fmt.Sprintf("journal %s: %v", f.Op, f.Err) }
func (f *Fault) Unwrap() error { return f.Err }

// Kind reports the harden classification of a journal failure.
func (f *Fault) Kind() harden.Kind { return harden.ToolFault }

// fault wraps err as a *Fault unless it already is one (or is nil).
func fault(op string, err error) error {
	if err == nil {
		return nil
	}
	var f *Fault
	if errors.As(err, &f) {
		return err
	}
	return &Fault{Op: op, Err: err}
}

// Stats are process-wide journal counters, exported on the fleet
// /metrics endpoint next to the script engine stats.
type Stats struct {
	RecordsWritten uint64 // records durably appended (incl. checkpoint rewrites)
	BytesWritten   uint64 // frame bytes appended
	ResumedSkipped uint64 // cells/generations restored from a journal instead of re-run
}

var (
	recordsWritten atomic.Uint64
	bytesWritten   atomic.Uint64
	resumedSkipped atomic.Uint64
)

// GetStats snapshots the process-wide journal counters.
func GetStats() Stats {
	return Stats{
		RecordsWritten: recordsWritten.Load(),
		BytesWritten:   bytesWritten.Load(),
		ResumedSkipped: resumedSkipped.Load(),
	}
}

// CountResumed adds n to the process-wide resumed-work counter; the
// campaign and explore resume paths call it once per skipped cell or
// restored generation.
func CountResumed(n int) {
	if n > 0 {
		resumedSkipped.Add(uint64(n))
	}
}

// Log is an open journal. All methods are safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	records   []Record // records recovered by Open plus those appended since
	recovered int      // how many records Open recovered (before any Append)
	truncated int64    // torn-tail bytes dropped by Open (0: clean)
}

// Open opens (or creates) the journal at path, replays every intact
// record, and truncates any torn tail so the next Append lands on a
// frame boundary. The recovered records are available via Records.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fault("open", err)
	}
	l := &Log{path: path, f: f}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// OpenResumable opens the log at path on behalf of a command-line
// -journal flag: a fresh or empty log opens directly, but one that
// already holds records requires resume — a command must never silently
// resume (or clobber) a previous run's banked work.
func OpenResumable(path string, resume bool) (*Log, error) {
	l, err := Open(path)
	if err != nil {
		return nil, err
	}
	if n := len(l.Records()); n > 0 && !resume {
		l.Close()
		return nil, fmt.Errorf(
			"journal %s already holds %d record(s): pass -resume to continue that run, or remove the file to start fresh",
			path, n)
	}
	return l, nil
}

// recover scans the file from the start, keeping every intact frame and
// truncating at the first torn or corrupt one.
func (l *Log) recover() error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return fault("read", err)
	}
	if len(data) == 0 {
		// Fresh journal: stamp the magic so a torn first write is
		// distinguishable from a foreign file.
		if _, err := l.f.Write(magic); err != nil {
			return fault("write", err)
		}
		return nil
	}
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic) {
		return fault("open", fmt.Errorf("%s: not a journal (bad magic)", l.path))
	}
	recs, good, _ := scan(data[len(magic):])
	good += int64(len(magic))
	l.records = recs
	l.recovered = len(recs)
	if good < int64(len(data)) {
		l.truncated = int64(len(data)) - good
		if err := l.f.Truncate(good); err != nil {
			return fault("truncate", err)
		}
	}
	if _, err := l.f.Seek(good, io.SeekStart); err != nil {
		return fault("seek", err)
	}
	return nil
}

// scan parses frames from b, returning the intact records, the byte
// offset of the first torn/corrupt frame (== len(b) when clean), and
// the error that stopped the scan (nil when clean). It never panics and
// never reads past len(b), whatever the length prefixes claim.
func scan(b []byte) (recs []Record, good int64, err error) {
	off := 0
	for off < len(b) {
		rec, n, err := DecodeFrame(b[off:])
		if err != nil {
			return recs, int64(off), err
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), nil
}

// DecodeFrame parses one frame from the front of b, returning the
// record and the bytes consumed. It errors on truncated input, lengths
// beyond MaxRecord, checksum mismatches, and malformed envelopes — and
// never panics or reads past b.
func DecodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, fmt.Errorf("journal: torn frame header (%d bytes)", len(b))
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if length > MaxRecord {
		return Record{}, 0, fmt.Errorf("journal: frame length %d exceeds %d", length, MaxRecord)
	}
	end := frameHeader + int(length)
	if end > len(b) {
		return Record{}, 0, fmt.Errorf("journal: torn frame payload (%d of %d bytes)", len(b)-frameHeader, length)
	}
	payload := b[frameHeader:end]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return Record{}, 0, fmt.Errorf("journal: checksum mismatch (%08x != %08x)", got, sum)
	}
	var rec Record
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Record{}, 0, fmt.Errorf("journal: bad envelope: %w", err)
	}
	if dec.More() {
		return Record{}, 0, fmt.Errorf("journal: trailing data after envelope")
	}
	if rec.V != FormatVersion {
		return Record{}, 0, fmt.Errorf("journal: record version %d, want %d", rec.V, FormatVersion)
	}
	if rec.Type == "" {
		return Record{}, 0, fmt.Errorf("journal: record missing type")
	}
	return rec, end, nil
}

// EncodeFrame renders a record as one durable frame.
func EncodeFrame(rec Record) ([]byte, error) {
	if rec.V == 0 {
		rec.V = FormatVersion
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxRecord {
		return nil, fmt.Errorf("journal: record %q is %d bytes, max %d", rec.Type, len(payload), MaxRecord)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// Records returns every record recovered at Open plus those appended
// since, in order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Recovered reports how many records Open replayed from disk, and how
// many torn-tail bytes it truncated to get there.
func (l *Log) Recovered() (records int, truncatedBytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovered, l.truncated
}

// Path returns the journal's file path.
func (l *Log) Path() string { return l.path }

// Append marshals v and durably appends one record of the given type.
// The write is a single contiguous frame: a crash leaves either the
// whole record or a torn tail the next Open truncates.
func (l *Log) Append(typ string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fault("encode", err)
	}
	rec := Record{V: FormatVersion, Type: typ, Data: data}
	frame, err := EncodeFrame(rec)
	if err != nil {
		return fault("encode", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fault("append", errors.New("journal is closed"))
	}
	if _, err := l.f.Write(frame); err != nil {
		return fault("append", err)
	}
	l.records = append(l.records, rec)
	recordsWritten.Add(1)
	bytesWritten.Add(uint64(len(frame)))
	return nil
}

// Sync flushes appended records to stable storage. Called at drain
// points (signal-triggered checkpoints, round boundaries), not per
// record.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return fault("sync", l.f.Sync())
}

// Checkpoint atomically replaces the log's contents with recs: the
// compacted state is written to a temp file, fsynced, and renamed over
// the journal, so a crash at any instant leaves either the old log or
// the new one — never a mix. Subsequent Appends extend the new log.
func (l *Log) Checkpoint(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fault("checkpoint", errors.New("journal is closed"))
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), filepath.Base(l.path)+".ckpt*")
	if err != nil {
		return fault("checkpoint", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var buf bytes.Buffer
	buf.Write(magic)
	kept := make([]Record, 0, len(recs))
	for _, rec := range recs {
		if rec.V == 0 {
			rec.V = FormatVersion
		}
		frame, err := EncodeFrame(rec)
		if err != nil {
			tmp.Close()
			return fault("checkpoint", err)
		}
		buf.Write(frame)
		kept = append(kept, rec)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fault("checkpoint", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fault("checkpoint", err)
	}
	if err := tmp.Close(); err != nil {
		return fault("checkpoint", err)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return fault("checkpoint", err)
	}
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fault("checkpoint", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fault("checkpoint", err)
	}
	l.f.Close()
	l.f = f
	l.records = kept
	recordsWritten.Add(uint64(len(kept)))
	bytesWritten.Add(uint64(buf.Len()))
	return nil
}

// Close syncs and closes the journal. The Log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	serr := l.f.Sync()
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return fault("sync", serr)
	}
	return fault("close", cerr)
}

// Decode unmarshals a record's payload into v, enforcing the record
// type first so a caller can't misread a foreign record.
func Decode(rec Record, typ string, v any) error {
	if rec.Type != typ {
		return fmt.Errorf("journal: record type %q, want %q", rec.Type, typ)
	}
	return json.Unmarshal(rec.Data, v)
}
