package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pfi/internal/harden"
)

var update = flag.Bool("update", false, "re-bless the pinned journal golden")

func open(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l
}

func appendT(t *testing.T, l *Log, typ string, v any) {
	t.Helper()
	if err := l.Append(typ, v); err != nil {
		t.Fatalf("Append(%s): %v", typ, err)
	}
}

type fact struct {
	Cell int    `json:"cell"`
	Note string `json:"note,omitempty"`
}

func TestAppendRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	l := open(t, path)
	appendT(t, l, "meta", map[string]int{"n": 3})
	for i := 0; i < 3; i++ {
		appendT(t, l, "verdict", fact{Cell: i, Note: "ok"})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := open(t, path)
	defer l2.Close()
	recs := l2.Records()
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
	if recs[0].Type != "meta" || recs[3].Type != "verdict" {
		t.Fatalf("record types: %q ... %q", recs[0].Type, recs[3].Type)
	}
	var f fact
	if err := Decode(recs[3], "verdict", &f); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if f.Cell != 2 || f.Note != "ok" {
		t.Fatalf("decoded %+v", f)
	}
	if n, torn := l2.Recovered(); n != 4 || torn != 0 {
		t.Fatalf("Recovered() = %d, %d; want 4, 0", n, torn)
	}
	if err := Decode(recs[3], "meta", &f); err == nil {
		t.Fatal("Decode with wrong type tag should fail")
	}
}

// A crash mid-write leaves a torn frame; Open must drop exactly the
// tail and leave an appendable log.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []string{"header", "payload"} {
		t.Run(cut, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j")
			l := open(t, path)
			appendT(t, l, "verdict", fact{Cell: 0})
			appendT(t, l, "verdict", fact{Cell: 1})
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			frame, err := EncodeFrame(Record{Type: "verdict", Data: json.RawMessage(`{"cell":2}`)})
			if err != nil {
				t.Fatal(err)
			}
			n := 3 // mid-header
			if cut == "payload" {
				n = frameHeader + 2
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(frame[:n])
			f.Close()

			l2 := open(t, path)
			recs := l2.Records()
			if len(recs) != 2 {
				t.Fatalf("recovered %d records, want 2", len(recs))
			}
			if _, torn := l2.Recovered(); torn != int64(n) {
				t.Fatalf("truncated %d bytes, want %d", torn, n)
			}
			// The log is healthy again: append and reopen cleanly.
			appendT(t, l2, "verdict", fact{Cell: 2})
			l2.Close()
			l3 := open(t, path)
			defer l3.Close()
			if got, torn := l3.Recovered(); got != 3 || torn != 0 {
				t.Fatalf("after repair: %d records, %d torn; want 3, 0", got, torn)
			}
		})
	}
}

func TestChecksumCorruptionTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	l := open(t, path)
	appendT(t, l, "verdict", fact{Cell: 0})
	appendT(t, l, "verdict", fact{Cell: 1})
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // flip a byte in the last payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := open(t, path)
	defer l2.Close()
	if recs := l2.Records(); len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1 (corrupt tail dropped)", len(recs))
	}
}

func TestCheckpointCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	l := open(t, path)
	for i := 0; i < 10; i++ {
		appendT(t, l, "verdict", fact{Cell: i})
	}
	big, _ := os.Stat(path)
	// Compact 10 deltas into one summary record, then keep appending.
	sum, _ := json.Marshal(map[string]int{"cells": 10})
	if err := l.Checkpoint([]Record{{Type: "checkpoint", Data: sum}}); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	small, _ := os.Stat(path)
	if small.Size() >= big.Size() {
		t.Fatalf("checkpoint did not compact: %d -> %d bytes", big.Size(), small.Size())
	}
	appendT(t, l, "verdict", fact{Cell: 10})
	l.Close()

	l2 := open(t, path)
	defer l2.Close()
	recs := l2.Records()
	if len(recs) != 2 || recs[0].Type != "checkpoint" || recs[1].Type != "verdict" {
		t.Fatalf("after checkpoint: %d records (%v)", len(recs), recs)
	}
	// A leftover temp file from a crashed checkpoint is ignored.
	if err := os.WriteFile(path+".ckpt-crashed", []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l3 := open(t, path)
	defer l3.Close()
	if got := len(l3.Records()); got != 2 {
		t.Fatalf("stray temp file changed recovery: %d records", got)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open of a foreign file should fail")
	}
}

func TestWriteFailureIsToolFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	l := open(t, path)
	l.Close()
	err := l.Append("verdict", fact{Cell: 0})
	if err == nil {
		t.Fatal("Append after Close should fail")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %T is not a *Fault", err)
	}
	if f.Kind() != harden.ToolFault {
		t.Fatalf("Fault.Kind() = %v, want ToolFault", f.Kind())
	}
}

func TestStatsCount(t *testing.T) {
	before := GetStats()
	path := filepath.Join(t.TempDir(), "j")
	l := open(t, path)
	appendT(t, l, "verdict", fact{Cell: 0})
	l.Close()
	CountResumed(3)
	after := GetStats()
	if after.RecordsWritten <= before.RecordsWritten {
		t.Fatal("RecordsWritten did not advance")
	}
	if after.BytesWritten <= before.BytesWritten {
		t.Fatal("BytesWritten did not advance")
	}
	if after.ResumedSkipped != before.ResumedSkipped+3 {
		t.Fatalf("ResumedSkipped = %d, want %d", after.ResumedSkipped, before.ResumedSkipped+3)
	}
}

// goldenRecords is the pinned journal: regenerate with -update, but any
// unintentional byte drift in the frame encoding is a format break.
func goldenRecords() []Record {
	return []Record{
		{Type: "meta", Data: json.RawMessage(`{"kind":"campaign","cells":70,"hash":"7a1d"}`)},
		{Type: "verdict", Data: json.RawMessage(`{"cell":0,"ok":true}`)},
		{Type: "verdict", Data: json.RawMessage(`{"cell":1,"ok":false,"outcome":"crash","retries":1}`)},
		{Type: "gen", Data: json.RawMessage(`{"gen":1,"runs":32,"rng":4096,"fp":"8f3c"}`)},
		{Type: "checkpoint", Data: json.RawMessage(`{"gen":8}`)},
		{Type: "epoch", Data: json.RawMessage(`{"n":1}`)},
	}
}

func TestGoldenFormat(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic)
	for _, rec := range goldenRecords() {
		frame, err := EncodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	path := filepath.Join("testdata", "journal", "records.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to bless): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("journal frame encoding drifted from pinned golden (%d vs %d bytes); if intentional, bump FormatVersion and -update", buf.Len(), len(want))
	}

	// The pinned bytes must also round-trip through Open.
	jp := filepath.Join(t.TempDir(), "golden.journal")
	if err := os.WriteFile(jp, want, 0o644); err != nil {
		t.Fatal(err)
	}
	l := open(t, jp)
	defer l.Close()
	recs := l.Records()
	wantRecs := goldenRecords()
	if len(recs) != len(wantRecs) {
		t.Fatalf("golden recovered %d records, want %d", len(recs), len(wantRecs))
	}
	for i, rec := range recs {
		if rec.Type != wantRecs[i].Type || !bytes.Equal(rec.Data, wantRecs[i].Data) {
			t.Fatalf("golden record %d: %s %s != %s %s", i, rec.Type, rec.Data, wantRecs[i].Type, wantRecs[i].Data)
		}
	}
}
