package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// FuzzJournalParse hammers the frame parser with hostile bytes:
// truncated tails, flipped checksum bytes, absurd length prefixes,
// malformed envelopes. The parser must error cleanly — never panic,
// never over-read, never allocate from an attacker-chosen length.
func FuzzJournalParse(f *testing.F) {
	// Intact frames of each record shape.
	for _, rec := range goldenRecords() {
		frame, err := EncodeFrame(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1])  // torn payload
		f.Add(frame[:frameHeader-1]) // torn header
		flipped := bytes.Clone(frame)
		flipped[4] ^= 0x01 // corrupt the stored checksum
		f.Add(flipped)
	}
	// Length prefix far beyond the buffer and beyond MaxRecord.
	huge := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(huge, 0xffffffff)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("PFIJRNL1"))

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with consumed=%d", n)
			}
			return
		}
		if n < frameHeader || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if rec.V != FormatVersion || rec.Type == "" {
			t.Fatalf("accepted invalid record %+v", rec)
		}
		// An accepted record re-encodes to a frame that decodes to the
		// same record (canonical JSON may differ; content must not).
		frame, err := EncodeFrame(Record{V: rec.V, Type: rec.Type, Data: rec.Data})
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		rec2, _, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if rec2.Type != rec.Type || !jsonEqual(rec2.Data, rec.Data) {
			t.Fatalf("round-trip drift: %+v vs %+v", rec, rec2)
		}

		// The multi-frame scanner must stop at the same boundary logic
		// and never run past the buffer.
		recs, good, _ := scan(b)
		if good < 0 || good > int64(len(b)) {
			t.Fatalf("scan consumed %d of %d bytes", good, len(b))
		}
		if len(recs) == 0 {
			t.Fatal("scan dropped the frame DecodeFrame accepted")
		}
	})
}

func jsonEqual(a, b json.RawMessage) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	var av, bv any
	if json.Unmarshal(a, &av) != nil || json.Unmarshal(b, &bv) != nil {
		return bytes.Equal(a, b)
	}
	aj, _ := json.Marshal(av)
	bj, _ := json.Marshal(bv)
	return bytes.Equal(aj, bj)
}
