// Package trace records timestamped experiment events — the equivalent of
// the paper's receive-filter packet logs ("each packet was logged with a
// timestamp by the receive filter script before it was dropped") — and
// provides the analysis used to build the paper's tables: interval
// extraction, exponential-backoff detection, and bound estimation.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pfi/internal/simtime"
)

// Entry is one logged event.
type Entry struct {
	At   simtime.Time
	Node string
	Kind string // e.g. "drop", "send", "recv", "retransmit", "keepalive"
	Type string // protocol message type, e.g. "DATA", "ACK", "COMMIT"
	Seq  uint64 // protocol sequence number when meaningful
	Note string
}

// String renders one log line.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %-10s %-10s %-12s", e.At, e.Node, e.Kind, e.Type)
	if e.Seq != 0 {
		fmt.Fprintf(&b, " seq=%d", e.Seq)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " %s", e.Note)
	}
	return b.String()
}

// Log is an append-only event log. It is not safe for concurrent use; the
// simulation is single-threaded.
type Log struct {
	entries []Entry
	sink    io.Writer // optional live tee
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Tee mirrors every added entry to w as it arrives.
func (l *Log) Tee(w io.Writer) { l.sink = w }

// Add appends an entry.
func (l *Log) Add(e Entry) {
	l.entries = append(l.entries, e)
	if l.sink != nil {
		fmt.Fprintln(l.sink, e)
	}
}

// Addf appends an entry built from parts.
func (l *Log) Addf(at simtime.Time, node, kind, typ string, seq uint64, note string) {
	l.Add(Entry{At: at, Node: node, Kind: kind, Type: typ, Seq: seq, Note: note})
}

// Len reports the entry count.
func (l *Log) Len() int { return len(l.entries) }

// SnapshotState captures the log for the snapshot registry. The log is
// append-only, so its whole mutable state is its length.
func (l *Log) SnapshotState() any { return len(l.entries) }

// RestoreState truncates the log back to a length captured by
// SnapshotState. Entries appended since the snapshot are discarded.
func (l *Log) RestoreState(state any) {
	n := state.(int)
	if n <= len(l.entries) {
		l.entries = l.entries[:n]
	}
}

// Entries returns a copy of the logged entries. Mutating the returned slice
// cannot corrupt the log; callers that want to avoid the copy can use
// AppendEntries with a reusable buffer.
func (l *Log) Entries() []Entry {
	return append([]Entry(nil), l.entries...)
}

// AppendEntries appends every logged entry to dst and returns the extended
// slice — the allocation-conscious sibling of Entries.
func (l *Log) AppendEntries(dst []Entry) []Entry {
	return append(dst, l.entries...)
}

// Filter returns the entries matching all non-empty criteria.
func (l *Log) Filter(node, kind, typ string) []Entry {
	var out []Entry
	for _, e := range l.entries {
		if node != "" && e.Node != node {
			continue
		}
		if kind != "" && e.Kind != kind {
			continue
		}
		if typ != "" && e.Type != typ {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Times extracts the timestamps of the filtered entries.
func (l *Log) Times(node, kind, typ string) []simtime.Time {
	es := l.Filter(node, kind, typ)
	ts := make([]simtime.Time, len(es))
	for i, e := range es {
		ts[i] = e.At
	}
	return ts
}

// Dump writes the whole log to w.
func (l *Log) Dump(w io.Writer) {
	for _, e := range l.entries {
		fmt.Fprintln(w, e)
	}
}

// Intervals returns the successive gaps between timestamps.
func Intervals(ts []simtime.Time) []time.Duration {
	if len(ts) < 2 {
		return nil
	}
	out := make([]time.Duration, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = ts[i].Sub(ts[i-1])
	}
	return out
}

// BackoffReport summarizes a retransmission schedule the way the paper's
// tables do: how many retransmissions, whether gaps grew exponentially, and
// the plateau (upper bound) if one was reached.
type BackoffReport struct {
	Retransmissions int
	First           time.Duration   // gap between original send and first retransmit
	Gaps            []time.Duration // successive retransmission gaps
	Exponential     bool            // each pre-plateau gap ~doubles
	Plateau         time.Duration   // 0 if never stabilized
	PlateauReached  bool
}

// AnalyzeBackoff inspects the timestamps of an original transmission
// followed by its retransmissions. tolerance is the allowed relative error
// when checking doubling and plateau equality (e.g. 0.25).
func AnalyzeBackoff(ts []simtime.Time, tolerance float64) BackoffReport {
	r := BackoffReport{Retransmissions: len(ts) - 1}
	if len(ts) < 2 {
		return r
	}
	r.Gaps = Intervals(ts)
	r.First = r.Gaps[0]
	// Find the plateau: a maximal run of near-equal gaps at the tail. A run
	// of at least three gaps is required to call the timeout "stabilized" —
	// two incidentally similar gaps (e.g. Solaris's 42 s then 48 s before
	// the abrupt close) are not an upper bound.
	n := len(r.Gaps)
	plateauStart := n
	for i := n - 1; i > 0; i-- {
		if approxEqual(r.Gaps[i], r.Gaps[i-1], tolerance) {
			plateauStart = i - 1
		} else {
			break
		}
	}
	if plateauStart <= n-3 {
		r.PlateauReached = true
		r.Plateau = r.Gaps[n-1]
	}
	// Check doubling before the plateau.
	r.Exponential = true
	end := plateauStart
	if !r.PlateauReached {
		end = n
	}
	for i := 1; i < end; i++ {
		ratio := float64(r.Gaps[i]) / float64(r.Gaps[i-1])
		if ratio < 2-4*tolerance || ratio > 2+4*tolerance {
			r.Exponential = false
			break
		}
	}
	return r
}

func approxEqual(a, b time.Duration, tol float64) bool {
	if a == b {
		return true
	}
	hi := float64(a)
	lo := float64(b)
	if lo > hi {
		hi, lo = lo, hi
	}
	return (hi-lo)/hi <= tol
}

// Mean returns the average duration (0 for empty input).
func Mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Median returns the middle duration (0 for empty input).
func Median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// Max returns the largest duration (0 for empty input).
func Max(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
