// Package trace records timestamped experiment events — the equivalent of
// the paper's receive-filter packet logs ("each packet was logged with a
// timestamp by the receive filter script before it was dropped") — and
// provides the analysis used to build the paper's tables: interval
// extraction, exponential-backoff detection, and bound estimation.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pfi/internal/simtime"
)

// Entry is one logged event.
type Entry struct {
	At   simtime.Time
	Node string
	Kind string // e.g. "drop", "send", "recv", "retransmit", "keepalive"
	Type string // protocol message type, e.g. "DATA", "ACK", "COMMIT"
	Seq  uint64 // protocol sequence number when meaningful
	Note string
}

// String renders one log line.
func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %-10s %-10s %-12s", e.At, e.Node, e.Kind, e.Type)
	if e.Seq != 0 {
		fmt.Fprintf(&b, " seq=%d", e.Seq)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " %s", e.Note)
	}
	return b.String()
}

// Entry storage is segmented: the log holds fixed-size blocks and appends
// into the last one, so growing never re-copies earlier entries. A
// 1000-node consensus run logs hundreds of thousands of entries; with a
// flat slice, append-regrowth re-copies the whole history O(log n) times
// and the copies dominate the run's budget. Blocks also keep the
// truncate-to-mark snapshot contract trivial: dropping back to a mark
// releases whole tail blocks and shortens the last kept one in place.
const (
	blockShift = 12 // 4096 entries per block
	blockSize  = 1 << blockShift
)

// Log is an append-only event log. It is not safe for concurrent use; the
// simulation is single-threaded.
type Log struct {
	blocks [][]Entry // every block but the last is full
	n      int       // total entries across blocks
	sink   io.Writer // optional live tee
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Tee mirrors every added entry to w as it arrives.
func (l *Log) Tee(w io.Writer) { l.sink = w }

// Add appends an entry.
func (l *Log) Add(e Entry) {
	if k := len(l.blocks); k == 0 || len(l.blocks[k-1]) == blockSize {
		l.blocks = append(l.blocks, make([]Entry, 0, blockSize))
	}
	k := len(l.blocks) - 1
	l.blocks[k] = append(l.blocks[k], e)
	l.n++
	if l.sink != nil {
		fmt.Fprintln(l.sink, e)
	}
}

// Addf appends an entry built from parts.
func (l *Log) Addf(at simtime.Time, node, kind, typ string, seq uint64, note string) {
	l.Add(Entry{At: at, Node: node, Kind: kind, Type: typ, Seq: seq, Note: note})
}

// Len reports the entry count.
func (l *Log) Len() int { return l.n }

// SnapshotState captures the log for the snapshot registry. The log is
// append-only, so its whole mutable state is its length.
func (l *Log) SnapshotState() any { return l.n }

// RestoreState truncates the log back to a length captured by
// SnapshotState. Entries appended since the snapshot are discarded.
func (l *Log) RestoreState(state any) {
	n := state.(int)
	if n > l.n {
		return
	}
	keep := (n + blockSize - 1) >> blockShift
	for i := keep; i < len(l.blocks); i++ {
		l.blocks[i] = nil
	}
	l.blocks = l.blocks[:keep]
	if keep > 0 {
		l.blocks[keep-1] = l.blocks[keep-1][:n-(keep-1)<<blockShift]
	}
	l.n = n
}

// each visits every entry in order.
func (l *Log) each(fn func(e Entry)) {
	for _, b := range l.blocks {
		for i := range b {
			fn(b[i])
		}
	}
}

// Entries returns a copy of the logged entries. Mutating the returned slice
// cannot corrupt the log; callers that want to avoid the copy can use
// AppendEntries with a reusable buffer.
func (l *Log) Entries() []Entry {
	out := make([]Entry, 0, l.n)
	for _, b := range l.blocks {
		out = append(out, b...)
	}
	return out
}

// AppendEntries appends every logged entry to dst and returns the extended
// slice — the allocation-conscious sibling of Entries.
func (l *Log) AppendEntries(dst []Entry) []Entry {
	for _, b := range l.blocks {
		dst = append(dst, b...)
	}
	return dst
}

// Filter returns the entries matching all non-empty criteria.
func (l *Log) Filter(node, kind, typ string) []Entry {
	var out []Entry
	l.each(func(e Entry) {
		if node != "" && e.Node != node {
			return
		}
		if kind != "" && e.Kind != kind {
			return
		}
		if typ != "" && e.Type != typ {
			return
		}
		out = append(out, e)
	})
	return out
}

// Times extracts the timestamps of the filtered entries.
func (l *Log) Times(node, kind, typ string) []simtime.Time {
	es := l.Filter(node, kind, typ)
	ts := make([]simtime.Time, len(es))
	for i, e := range es {
		ts[i] = e.At
	}
	return ts
}

// Dump writes the whole log to w.
func (l *Log) Dump(w io.Writer) {
	l.each(func(e Entry) { fmt.Fprintln(w, e) })
}

// Intervals returns the successive gaps between timestamps.
func Intervals(ts []simtime.Time) []time.Duration {
	if len(ts) < 2 {
		return nil
	}
	out := make([]time.Duration, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = ts[i].Sub(ts[i-1])
	}
	return out
}

// BackoffReport summarizes a retransmission schedule the way the paper's
// tables do: how many retransmissions, whether gaps grew exponentially, and
// the plateau (upper bound) if one was reached.
type BackoffReport struct {
	Retransmissions int
	First           time.Duration   // gap between original send and first retransmit
	Gaps            []time.Duration // successive retransmission gaps
	Exponential     bool            // each pre-plateau gap ~doubles
	Plateau         time.Duration   // 0 if never stabilized
	PlateauReached  bool
}

// AnalyzeBackoff inspects the timestamps of an original transmission
// followed by its retransmissions. tolerance is the allowed relative error
// when checking doubling and plateau equality (e.g. 0.25).
func AnalyzeBackoff(ts []simtime.Time, tolerance float64) BackoffReport {
	r := BackoffReport{Retransmissions: len(ts) - 1}
	if len(ts) < 2 {
		return r
	}
	r.Gaps = Intervals(ts)
	r.First = r.Gaps[0]
	// Find the plateau: a maximal run of near-equal gaps at the tail. A run
	// of at least three gaps is required to call the timeout "stabilized" —
	// two incidentally similar gaps (e.g. Solaris's 42 s then 48 s before
	// the abrupt close) are not an upper bound.
	n := len(r.Gaps)
	plateauStart := n
	for i := n - 1; i > 0; i-- {
		if approxEqual(r.Gaps[i], r.Gaps[i-1], tolerance) {
			plateauStart = i - 1
		} else {
			break
		}
	}
	if plateauStart <= n-3 {
		r.PlateauReached = true
		r.Plateau = r.Gaps[n-1]
	}
	// Check doubling before the plateau.
	r.Exponential = true
	end := plateauStart
	if !r.PlateauReached {
		end = n
	}
	for i := 1; i < end; i++ {
		ratio := float64(r.Gaps[i]) / float64(r.Gaps[i-1])
		if ratio < 2-4*tolerance || ratio > 2+4*tolerance {
			r.Exponential = false
			break
		}
	}
	return r
}

func approxEqual(a, b time.Duration, tol float64) bool {
	if a == b {
		return true
	}
	hi := float64(a)
	lo := float64(b)
	if lo > hi {
		hi, lo = lo, hi
	}
	return (hi-lo)/hi <= tol
}

// Mean returns the average duration (0 for empty input).
func Mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Median returns the middle duration (0 for empty input).
func Median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// Max returns the largest duration (0 for empty input).
func Max(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}
