package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pfi/internal/simtime"
)

func fillLog(n int) *Log {
	l := NewLog()
	for i := 0; i < n; i++ {
		l.Addf(simtime.Time(i), fmt.Sprintf("n%d", i%7), "kind", "TYPE", uint64(i), "")
	}
	return l
}

// TestLogSegmentedSemantics pins the whole Log contract across block
// boundaries: Len/Entries/AppendEntries/Filter/Dump agree with a flat
// reference, and RestoreState truncates to any mark (including marks that
// land exactly on, just before, and just after a block edge) with appends
// continuing cleanly afterwards.
func TestLogSegmentedSemantics(t *testing.T) {
	const total = 3*blockSize + 17
	l := fillLog(total)
	if l.Len() != total {
		t.Fatalf("Len = %d, want %d", l.Len(), total)
	}
	es := l.Entries()
	if len(es) != total {
		t.Fatalf("Entries len = %d, want %d", len(es), total)
	}
	for i, e := range es {
		if e.Seq != uint64(i) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
	if got := l.AppendEntries(nil); len(got) != total || got[total-1].Seq != total-1 {
		t.Fatalf("AppendEntries mismatch: len %d", len(got))
	}
	// AppendEntries extends, never replaces.
	pre := []Entry{{Node: "pre"}}
	if got := l.AppendEntries(pre); len(got) != total+1 || got[0].Node != "pre" {
		t.Fatalf("AppendEntries did not extend dst")
	}
	if got := l.Filter("n3", "", ""); len(got) == 0 || got[0].Seq != 3 {
		t.Fatalf("Filter across blocks broken: %v", got)
	}
	var buf bytes.Buffer
	l.Dump(&buf)
	if n := strings.Count(buf.String(), "\n"); n != total {
		t.Fatalf("Dump wrote %d lines, want %d", n, total)
	}

	for _, mark := range []int{0, 1, blockSize - 1, blockSize, blockSize + 1, 2 * blockSize, total} {
		l := fillLog(total)
		l.RestoreState(mark)
		if l.Len() != mark {
			t.Fatalf("after restore to %d: Len = %d", mark, l.Len())
		}
		es := l.Entries()
		if len(es) != mark || (mark > 0 && es[mark-1].Seq != uint64(mark-1)) {
			t.Fatalf("after restore to %d: bad entries (len %d)", mark, len(es))
		}
		// Appending after a truncation resumes exactly at the mark.
		l.Addf(0, "post", "k", "", 9999, "")
		if es := l.Entries(); len(es) != mark+1 || es[mark].Node != "post" {
			t.Fatalf("append after restore to %d landed wrong", mark)
		}
	}

	// Restoring to a length beyond the log is a no-op (snapshot contract:
	// marks only ever shrink the log).
	l2 := fillLog(10)
	l2.RestoreState(99)
	if l2.Len() != 10 {
		t.Fatalf("restore past end mutated log: %d", l2.Len())
	}
}

// TestLogAppendDoesNotMoveEntries is the append-regrowth regression: once an
// entry is logged its storage never moves, no matter how much is appended
// after it — growth allocates new blocks instead of re-copying history.
func TestLogAppendDoesNotMoveEntries(t *testing.T) {
	l := fillLog(blockSize + 10)
	p0 := &l.blocks[0][0]
	p1 := &l.blocks[1][0]
	for i := 0; i < 5*blockSize; i++ {
		l.Addf(0, "x", "k", "", 0, "")
	}
	if p0 != &l.blocks[0][0] || p1 != &l.blocks[1][0] {
		t.Fatal("append moved previously logged entries")
	}
}
