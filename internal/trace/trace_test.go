package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pfi/internal/simtime"
)

func at(s float64) simtime.Time {
	return simtime.Time(time.Duration(s * float64(time.Second)))
}

func TestLogFilter(t *testing.T) {
	l := NewLog()
	l.Addf(at(1), "sun", "drop", "DATA", 100, "")
	l.Addf(at(2), "sun", "drop", "ACK", 0, "")
	l.Addf(at(3), "aix", "drop", "DATA", 101, "")
	l.Addf(at(4), "sun", "send", "DATA", 102, "")

	if got := len(l.Filter("sun", "", "")); got != 3 {
		t.Errorf("Filter(sun) = %d entries, want 3", got)
	}
	if got := len(l.Filter("", "drop", "")); got != 3 {
		t.Errorf("Filter(drop) = %d entries, want 3", got)
	}
	if got := len(l.Filter("sun", "drop", "DATA")); got != 1 {
		t.Errorf("Filter(sun,drop,DATA) = %d entries, want 1", got)
	}
	if got := len(l.Filter("", "", "")); got != 4 {
		t.Errorf("Filter(all) = %d entries, want 4", got)
	}
	if l.Len() != 4 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestTimes(t *testing.T) {
	l := NewLog()
	l.Addf(at(1), "n", "recv", "KA", 0, "")
	l.Addf(at(5), "n", "recv", "KA", 0, "")
	ts := l.Times("n", "recv", "KA")
	if len(ts) != 2 || ts[0] != at(1) || ts[1] != at(5) {
		t.Fatalf("Times = %v", ts)
	}
}

func TestTee(t *testing.T) {
	l := NewLog()
	var buf bytes.Buffer
	l.Tee(&buf)
	l.Addf(at(1), "n", "drop", "ACK", 7, "note")
	out := buf.String()
	for _, want := range []string{"drop", "ACK", "seq=7", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("tee output %q missing %q", out, want)
		}
	}
}

func TestDump(t *testing.T) {
	l := NewLog()
	l.Addf(at(1), "n", "a", "T", 0, "")
	l.Addf(at(2), "n", "b", "T", 0, "")
	var buf bytes.Buffer
	l.Dump(&buf)
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("Dump produced %d lines, want 2", lines)
	}
}

func TestIntervals(t *testing.T) {
	ts := []simtime.Time{at(1), at(3), at(7)}
	got := Intervals(ts)
	want := []time.Duration{2 * time.Second, 4 * time.Second}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Intervals = %v, want %v", got, want)
	}
	if Intervals(nil) != nil {
		t.Fatal("Intervals(nil) != nil")
	}
	if Intervals(ts[:1]) != nil {
		t.Fatal("Intervals of singleton != nil")
	}
}

// A BSD-style retransmission schedule: exponential doubling to a 64 s cap.
func TestAnalyzeBackoffBSDSchedule(t *testing.T) {
	ts := []simtime.Time{at(0)}
	cur := 0.0
	for _, gap := range []float64{1, 2, 4, 8, 16, 32, 64, 64, 64, 64, 64, 64} {
		cur += gap
		ts = append(ts, at(cur))
	}
	r := AnalyzeBackoff(ts, 0.1)
	if r.Retransmissions != 12 {
		t.Errorf("Retransmissions = %d, want 12", r.Retransmissions)
	}
	if !r.Exponential {
		t.Error("schedule not detected as exponential")
	}
	if !r.PlateauReached || r.Plateau != 64*time.Second {
		t.Errorf("plateau = %v reached=%v, want 64 s", r.Plateau, r.PlateauReached)
	}
	if r.First != time.Second {
		t.Errorf("First = %v, want 1 s", r.First)
	}
}

// A Solaris-style schedule: short floor, pure exponential, no plateau.
func TestAnalyzeBackoffNoPlateau(t *testing.T) {
	ts := []simtime.Time{at(0)}
	cur := 0.0
	for _, gap := range []float64{0.33, 0.66, 1.32, 2.64, 5.28, 10.56, 21.12, 42.24, 48} {
		cur += gap
		ts = append(ts, at(cur))
	}
	r := AnalyzeBackoff(ts, 0.15)
	if r.Retransmissions != 9 {
		t.Errorf("Retransmissions = %d, want 9", r.Retransmissions)
	}
	if r.PlateauReached {
		t.Errorf("plateau %v detected, want none", r.Plateau)
	}
	if r.First != 330*time.Millisecond {
		t.Errorf("First = %v, want 330 ms", r.First)
	}
}

func TestAnalyzeBackoffNotExponential(t *testing.T) {
	// Constant 75-second keep-alive retransmissions: a plateau from the
	// start, not an exponential ramp — but also not "non-exponential"
	// failure since there are no pre-plateau gaps.
	ts := []simtime.Time{at(0)}
	for i := 1; i <= 8; i++ {
		ts = append(ts, at(float64(i)*75))
	}
	r := AnalyzeBackoff(ts, 0.1)
	if !r.PlateauReached || r.Plateau != 75*time.Second {
		t.Fatalf("plateau = %v reached=%v, want 75 s", r.Plateau, r.PlateauReached)
	}
	// Linear (non-doubling) gaps must be flagged when present pre-plateau.
	ts2 := []simtime.Time{at(0), at(1), at(3), at(6), at(10), at(100), at(190)}
	r2 := AnalyzeBackoff(ts2, 0.05)
	if r2.Exponential {
		t.Error("linear ramp misdetected as exponential")
	}
}

func TestAnalyzeBackoffDegenerate(t *testing.T) {
	if r := AnalyzeBackoff(nil, 0.1); r.Retransmissions != -1 && r.Retransmissions != 0 {
		// len(nil)-1 == -1; document that callers pass >=1 timestamps.
		t.Logf("degenerate retransmissions = %d", r.Retransmissions)
	}
	r := AnalyzeBackoff([]simtime.Time{at(5)}, 0.1)
	if r.Retransmissions != 0 || r.Gaps != nil {
		t.Fatalf("singleton backoff = %+v", r)
	}
}

func TestStats(t *testing.T) {
	ds := []time.Duration{time.Second, 3 * time.Second, 2 * time.Second}
	if m := Mean(ds); m != 2*time.Second {
		t.Errorf("Mean = %v", m)
	}
	if m := Median(ds); m != 2*time.Second {
		t.Errorf("Median = %v", m)
	}
	if m := Max(ds); m != 3*time.Second {
		t.Errorf("Max = %v", m)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Max(nil) != 0 {
		t.Error("empty stats not zero")
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{At: at(2), Node: "sun", Kind: "drop", Type: "ACK", Seq: 9, Note: "delayed"}
	s := e.String()
	for _, want := range []string{"sun", "drop", "ACK", "seq=9", "delayed"} {
		if !strings.Contains(s, want) {
			t.Errorf("Entry.String() %q missing %q", s, want)
		}
	}
}
