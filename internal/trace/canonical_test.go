package trace

import (
	"strings"
	"testing"
	"time"

	"pfi/internal/simtime"
)

func sampleEntries() []Entry {
	return []Entry{
		{At: 0, Node: "vendor", Kind: "send", Type: "SYN", Seq: 0, Note: ""},
		{At: simtime.Time(2 * time.Millisecond), Node: "xkernel", Kind: "recv", Type: "SYN", Seq: 0, Note: "handshake"},
		{At: simtime.Time(64 * time.Second), Node: "vendor", Kind: "retransmit", Type: "DATA", Seq: 31, Note: "rto=64s backoff"},
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	want := sampleEntries()
	var b strings.Builder
	if err := WriteCanonical(&b, want); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCanonical(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Diff(want, got, 0); len(diffs) != 0 {
		t.Fatalf("round trip not identical:\n%s", strings.Join(diffs, "\n"))
	}
}

func TestCanonicalSanitizesNotes(t *testing.T) {
	in := []Entry{{Node: "n", Kind: "k", Type: "T", Note: "a\tb\nc"}}
	var b strings.Builder
	if err := WriteCanonical(&b, in); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCanonical(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Note != "a b c" {
		t.Fatalf("note not sanitized: %+v", got)
	}
}

func TestParseCanonicalRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"not a trace line",
		"xyz\tn\tk\tT\t0\t",
		"0\tn\tk\tT\tnotanumber\t",
	} {
		if _, err := ParseCanonical(strings.NewReader(src)); err == nil {
			t.Errorf("ParseCanonical(%q): want error", src)
		}
	}
}

func TestDiffReportsAllMismatchKinds(t *testing.T) {
	a := sampleEntries()
	// Changed entry.
	b := sampleEntries()
	b[2].At += simtime.Time(time.Second)
	if diffs := Diff(a, b, 0); len(diffs) != 1 || !strings.Contains(diffs[0], "entry 2") {
		t.Fatalf("changed entry: got %v", diffs)
	}
	// Missing tail.
	if diffs := Diff(a, a[:2], 0); len(diffs) != 1 || !strings.Contains(diffs[0], "missing") {
		t.Fatalf("missing entry: got %v", diffs)
	}
	// Extra tail.
	if diffs := Diff(a[:2], a, 0); len(diffs) != 1 || !strings.Contains(diffs[0], "unexpected") {
		t.Fatalf("extra entry: got %v", diffs)
	}
	// Limit.
	c := make([]Entry, len(a))
	for i := range a {
		c[i] = a[i]
		c[i].Node = "other"
	}
	if diffs := Diff(a, c, 2); len(diffs) != 2 {
		t.Fatalf("limit: got %d diffs", len(diffs))
	}
	if diffs := Diff(a, sampleEntries(), 0); len(diffs) != 0 {
		t.Fatalf("identical traces: got %v", diffs)
	}
}

// The Entries shared-slice footgun: callers mutating the returned slice must
// not corrupt the log.
func TestEntriesReturnsACopy(t *testing.T) {
	l := NewLog()
	l.Addf(0, "n", "send", "DATA", 1, "original")
	es := l.Entries()
	es[0].Note = "mutated"
	es[0].Node = "attacker"
	if got := l.Entries()[0]; got.Note != "original" || got.Node != "n" {
		t.Fatalf("log corrupted by caller mutation: %+v", got)
	}
	// AppendEntries extends the destination without sharing log storage.
	buf := make([]Entry, 0, 4)
	buf = l.AppendEntries(buf)
	buf[0].Note = "mutated again"
	if got := l.Entries()[0]; got.Note != "original" {
		t.Fatalf("log corrupted via AppendEntries buffer: %+v", got)
	}
	if len(buf) != l.Len() {
		t.Fatalf("AppendEntries length %d, want %d", len(buf), l.Len())
	}
}
