package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"pfi/internal/simtime"
)

// The canonical trace format is the golden-file representation of a Log:
// one entry per line, tab-separated fields, virtual time in integer
// nanoseconds. It is stable under formatting changes to Entry.String (which
// is for humans) and round-trips exactly, so golden comparisons are
// entry-by-entry rather than textual.

// Canonical renders one entry in the golden format.
func (e Entry) Canonical() string {
	return fmt.Sprintf("%d\t%s\t%s\t%s\t%d\t%s",
		int64(time.Duration(e.At)), e.Node, e.Kind, e.Type, e.Seq, sanitize(e.Note))
}

// sanitize keeps notes single-line and tab-free so the canonical format
// stays one-entry-per-line.
func sanitize(s string) string {
	if !strings.ContainsAny(s, "\t\n\r") {
		return s
	}
	r := strings.NewReplacer("\t", " ", "\n", " ", "\r", " ")
	return r.Replace(s)
}

// WriteCanonical writes entries in canonical form, one per line, preceded by
// a version header.
func WriteCanonical(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# pfi-trace v1 entries=%d\n", len(entries))
	for _, e := range entries {
		fmt.Fprintln(bw, e.Canonical())
	}
	return bw.Flush()
}

// ParseCanonical reads a canonical trace back into entries. Blank lines and
// '#' comment lines are ignored.
func ParseCanonical(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 6)
		if len(parts) < 5 {
			return nil, fmt.Errorf("trace: line %d: want >= 5 tab-separated fields, got %d", lineNo, len(parts))
		}
		ns, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q", lineNo, parts[0])
		}
		seq, err := strconv.ParseUint(parts[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad seq %q", lineNo, parts[4])
		}
		e := Entry{
			At:   simtime.Time(time.Duration(ns)),
			Node: parts[1],
			Kind: parts[2],
			Type: parts[3],
			Seq:  seq,
		}
		if len(parts) == 6 {
			e.Note = parts[5]
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Diff compares two traces entry-by-entry and describes up to limit
// mismatches (limit <= 0 means all). An empty result means the traces are
// identical.
func Diff(want, got []Entry, limit int) []string {
	var out []string
	add := func(s string) bool {
		out = append(out, s)
		return limit > 0 && len(out) >= limit
	}
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			if add(fmt.Sprintf("entry %d:\n  want: %s\n  got:  %s", i, want[i].Canonical(), got[i].Canonical())) {
				return out
			}
		}
	}
	for i := n; i < len(want); i++ {
		if add(fmt.Sprintf("entry %d: missing (want: %s)", i, want[i].Canonical())) {
			return out
		}
	}
	for i := n; i < len(got); i++ {
		if add(fmt.Sprintf("entry %d: unexpected (got: %s)", i, got[i].Canonical())) {
			return out
		}
	}
	return out
}
