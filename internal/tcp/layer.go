package tcp

import (
	"fmt"

	"pfi/internal/message"
	"pfi/internal/netsim"
	"pfi/internal/stack"
	"pfi/internal/trace"
)

// Layer is a TCP protocol layer: it demultiplexes incoming segments to
// connections and ships outgoing segments toward the network. It
// implements stack.Layer so a PFI layer can be spliced directly below it,
// exactly where the paper put its fault injector ("directly between the
// TCP layer and the IP layer").
type Layer struct {
	base      stack.Base
	env       *stack.Env
	prof      Profile
	conns     map[connKey]*Conn
	listeners map[uint16]bool
	acceptFns map[uint16]func(*Conn)
	iss       uint32
	ephemeral uint16
	log       *trace.Log
}

var _ stack.Layer = (*Layer)(nil)

type connKey struct {
	localPort  uint16
	remoteNode string
	remotePort uint16
}

// LayerOption configures a Layer.
type LayerOption func(*Layer)

// WithTrace mirrors connection events (retransmit, keepalive, zwp, reset,
// close) into lg.
func WithTrace(lg *trace.Log) LayerOption {
	return func(l *Layer) { l.log = lg }
}

// NewLayer builds a TCP layer with the given vendor behaviour profile.
func NewLayer(env *stack.Env, prof Profile, opts ...LayerOption) (*Layer, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	l := &Layer{
		base:      stack.NewBase("tcp"),
		env:       env,
		prof:      prof,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]bool),
		acceptFns: make(map[uint16]func(*Conn)),
		iss:       1000,
		ephemeral: 32768,
	}
	for _, opt := range opts {
		opt(l)
	}
	return l, nil
}

// MustNewLayer is NewLayer for known-good profiles in setup code.
func MustNewLayer(env *stack.Env, prof Profile, opts ...LayerOption) *Layer {
	l, err := NewLayer(env, prof, opts...)
	if err != nil {
		panic(err)
	}
	return l
}

// Profile returns the layer's behaviour profile.
func (l *Layer) Profile() Profile { return l.prof }

// Name implements stack.Layer.
func (l *Layer) Name() string { return "tcp" }

// Wire implements stack.Layer.
func (l *Layer) Wire(down, up stack.Sink) { l.base.Wire(down, up) }

// HandleDown implements stack.Layer. Applications interact with TCP through
// the Conn API rather than by pushing raw messages, so this path rejects
// traffic loudly instead of corrupting a connection.
func (l *Layer) HandleDown(m *message.Message) error {
	return fmt.Errorf("tcp: push app data through Conn.Send, not the raw stack")
}

// HandleUp implements stack.Layer: segment arrival from the network.
func (l *Layer) HandleUp(m *message.Message) error {
	seg, err := Decode(m)
	if err != nil {
		return nil // garbage on the wire is dropped, not fatal
	}
	srcAttr, _ := m.Attr(netsim.AttrSrc)
	srcNode, _ := srcAttr.(string)
	if srcNode == "" {
		return fmt.Errorf("tcp: segment without source node")
	}
	key := connKey{localPort: seg.DstPort, remoteNode: srcNode, remotePort: seg.SrcPort}
	if c, ok := l.conns[key]; ok {
		c.handleSegment(seg)
		return nil
	}
	if l.listeners[seg.DstPort] && seg.Has(FlagSYN) && !seg.Has(FlagACK) {
		l.accept(srcNode, seg)
		return nil
	}
	// Segment to a closed port: answer with RST (unless it is itself one).
	// This is what lets a rebooted receiver kill a zero-window prober.
	if !seg.Has(FlagRST) {
		rst := &Segment{
			SrcPort: seg.DstPort,
			DstPort: seg.SrcPort,
			Seq:     seg.Ack,
			Ack:     seg.Seq + seg.SeqSpace(),
			Flags:   FlagRST | FlagACK,
		}
		l.transmit(srcNode, rst)
	}
	return nil
}

// accept handles a SYN to a listening port.
func (l *Layer) accept(srcNode string, syn *Segment) {
	c := l.newConn(StateSynRcvd, syn.DstPort, srcNode, syn.SrcPort)
	c.irs = syn.Seq
	c.rcvNxt = syn.Seq + 1
	c.sndWnd = int(syn.Window)
	l.conns[c.key()] = c
	// SYN-ACK occupies one sequence slot and is retransmitted until acked.
	c.sendControl(FlagSYN|FlagACK, true)
}

func (c *Conn) key() connKey {
	return connKey{localPort: c.localPort, remoteNode: c.remoteNode, remotePort: c.remotePort}
}

// Listen opens a passive port; accept runs when a connection establishes.
func (l *Layer) Listen(port uint16, accept func(*Conn)) error {
	if l.listeners[port] {
		return fmt.Errorf("tcp: port %d already listening", port)
	}
	l.listeners[port] = true
	l.acceptFns[port] = accept
	return nil
}

// Connect starts an active open to remoteNode:remotePort and returns the
// connection in SYN-SENT; register OnEstablished to learn when it is up.
func (l *Layer) Connect(remoteNode string, remotePort uint16) (*Conn, error) {
	local := l.nextEphemeral()
	c := l.newConn(StateSynSent, local, remoteNode, remotePort)
	l.conns[c.key()] = c
	c.sendControl(FlagSYN, true)
	return c, nil
}

// Conns returns the number of live connections.
func (l *Layer) Conns() int { return len(l.conns) }

func (l *Layer) nextISS() uint32 {
	l.iss += 64000
	return l.iss
}

func (l *Layer) nextEphemeral() uint16 {
	l.ephemeral++
	if l.ephemeral == 0 {
		l.ephemeral = 32768
	}
	return l.ephemeral
}

// transmit encodes a segment, addresses it, and pushes it down the stack
// (through any PFI layer spliced in below).
func (l *Layer) transmit(dstNode string, seg *Segment) {
	m := seg.Encode()
	m.SetAttr(netsim.AttrDst, dstNode)
	// Transmission failures below (e.g. a filter script error) surface in
	// the experiment log; TCP itself treats the network as lossy anyway.
	if err := l.base.Down(m); err != nil && l.log != nil {
		l.log.Addf(l.env.Now(), l.env.Node, "tx-error", seg.Type(), uint64(seg.Seq), err.Error())
	}
}

func (l *Layer) forget(c *Conn) {
	delete(l.conns, c.key())
}

func (l *Layer) logEvent(c *Conn, kind string, seg *Segment) {
	if l.log == nil {
		return
	}
	l.log.Addf(l.env.Now(), l.env.Node, kind, seg.Type(), uint64(seg.Seq), seg.String())
}

func (l *Layer) logEventNote(c *Conn, kind, note string) {
	if l.log == nil {
		return
	}
	l.log.Addf(l.env.Now(), l.env.Node, kind, "", 0, note)
}
