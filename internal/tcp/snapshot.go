package tcp

import (
	"time"

	"pfi/internal/simtime"
)

// This file makes the TCP layer snapshot-capable (see internal/snapshot).
// Connections and tracked segments are retained by pointer — their timer
// closures are method values on the same *Conn, and the scheduler restores
// the events those pointers refer to — while every field the state machine
// mutates is saved by value and written back on restore.

// estState is the RTO estimator's mutable state (the configuration fields
// are immutable).
type estState struct {
	srtt    time.Duration
	rttvar  time.Duration
	sampled bool
}

// sentSegState saves the fields a retransmission mutates in place on a
// tracked segment: the retry counter plus the refreshed ACK/window.
type sentSegState struct {
	ss          *sentSeg
	retransmits int
	ack         uint32
	window      uint16
}

// connState is one connection's mutable state.
type connState struct {
	est   estState
	state State

	iss    uint32
	sndUna uint32
	sndNxt uint32
	sndWnd int

	sendQ   []byte
	unacked []sentSegState

	rtxTimer  *simtime.Event
	rtxCount  int
	globalErr int
	backoff   int

	timingValid  bool
	timedEnd     uint32
	timedAt      simtime.Time
	timedRetrans bool

	irs         uint32
	rcvNxt      uint32
	recvBufSize int
	recvQ       []byte
	oooQ        map[uint32][]byte
	autoConsume bool

	keepAlive bool
	kaTimer   *simtime.Event
	kaProbing bool
	kaRetrans int

	zwpTimer *simtime.Event
	zwpCount int
	zwpEver  bool

	delackTimer   *simtime.Event
	delackPending int

	timeWaitTimer *simtime.Event

	onEstablished func()
	onData        func(data []byte)
	onClose       func(reason string)

	closeReason string
}

func (c *Conn) snapshotState() *connState {
	st := &connState{
		est:           estState{srtt: c.est.srtt, rttvar: c.est.rttvar, sampled: c.est.sampled},
		state:         c.state,
		iss:           c.iss,
		sndUna:        c.sndUna,
		sndNxt:        c.sndNxt,
		sndWnd:        c.sndWnd,
		sendQ:         append([]byte(nil), c.sendQ...),
		rtxTimer:      c.rtxTimer,
		rtxCount:      c.rtxCount,
		globalErr:     c.globalErr,
		backoff:       c.backoff,
		timingValid:   c.timingValid,
		timedEnd:      c.timedEnd,
		timedAt:       c.timedAt,
		timedRetrans:  c.timedRetrans,
		irs:           c.irs,
		rcvNxt:        c.rcvNxt,
		recvBufSize:   c.recvBufSize,
		recvQ:         append([]byte(nil), c.recvQ...),
		autoConsume:   c.autoConsume,
		keepAlive:     c.keepAlive,
		kaTimer:       c.kaTimer,
		kaProbing:     c.kaProbing,
		kaRetrans:     c.kaRetrans,
		zwpTimer:      c.zwpTimer,
		zwpCount:      c.zwpCount,
		zwpEver:       c.zwpEver,
		delackTimer:   c.delackTimer,
		delackPending: c.delackPending,
		timeWaitTimer: c.timeWaitTimer,
		onEstablished: c.onEstablished,
		onData:        c.onData,
		onClose:       c.onClose,
		closeReason:   c.closeReason,
	}
	st.unacked = make([]sentSegState, len(c.unacked))
	for i, ss := range c.unacked {
		st.unacked[i] = sentSegState{ss: ss, retransmits: ss.retransmits,
			ack: ss.seg.Ack, window: ss.seg.Window}
	}
	// Out-of-order payloads are stored as fresh copies and never mutated in
	// place (draining deletes the entry), so a shallow map copy suffices.
	st.oooQ = make(map[uint32][]byte, len(c.oooQ))
	for k, v := range c.oooQ {
		st.oooQ[k] = v
	}
	return st
}

func (c *Conn) restoreState(st *connState) {
	c.est.srtt, c.est.rttvar, c.est.sampled = st.est.srtt, st.est.rttvar, st.est.sampled
	c.state = st.state
	c.iss, c.sndUna, c.sndNxt, c.sndWnd = st.iss, st.sndUna, st.sndNxt, st.sndWnd
	c.sendQ = append(c.sendQ[:0], st.sendQ...)
	c.unacked = c.unacked[:0]
	for _, sv := range st.unacked {
		sv.ss.retransmits = sv.retransmits
		sv.ss.seg.Ack = sv.ack
		sv.ss.seg.Window = sv.window
		c.unacked = append(c.unacked, sv.ss)
	}
	c.rtxTimer, c.rtxCount, c.globalErr, c.backoff = st.rtxTimer, st.rtxCount, st.globalErr, st.backoff
	c.timingValid, c.timedEnd, c.timedAt, c.timedRetrans = st.timingValid, st.timedEnd, st.timedAt, st.timedRetrans
	c.irs, c.rcvNxt, c.recvBufSize = st.irs, st.rcvNxt, st.recvBufSize
	c.recvQ = append(c.recvQ[:0], st.recvQ...)
	c.oooQ = make(map[uint32][]byte, len(st.oooQ))
	for k, v := range st.oooQ {
		c.oooQ[k] = v
	}
	c.autoConsume = st.autoConsume
	c.keepAlive, c.kaTimer, c.kaProbing, c.kaRetrans = st.keepAlive, st.kaTimer, st.kaProbing, st.kaRetrans
	c.zwpTimer, c.zwpCount, c.zwpEver = st.zwpTimer, st.zwpCount, st.zwpEver
	c.delackTimer, c.delackPending = st.delackTimer, st.delackPending
	c.timeWaitTimer = st.timeWaitTimer
	c.onEstablished, c.onData, c.onClose = st.onEstablished, st.onData, st.onClose
	c.closeReason = st.closeReason
}

// layerState is the TCP layer's mutable state.
type layerState struct {
	conns      map[connKey]*Conn
	connStates map[connKey]*connState
	listeners  map[uint16]bool
	acceptFns  map[uint16]func(*Conn)
	iss        uint32
	ephemeral  uint16
}

// SnapshotState captures the layer for the snapshot registry.
func (l *Layer) SnapshotState() any {
	st := &layerState{
		conns:      make(map[connKey]*Conn, len(l.conns)),
		connStates: make(map[connKey]*connState, len(l.conns)),
		listeners:  make(map[uint16]bool, len(l.listeners)),
		acceptFns:  make(map[uint16]func(*Conn), len(l.acceptFns)),
		iss:        l.iss,
		ephemeral:  l.ephemeral,
	}
	for k, c := range l.conns {
		st.conns[k] = c
		st.connStates[k] = c.snapshotState()
	}
	for k, v := range l.listeners {
		st.listeners[k] = v
	}
	for k, v := range l.acceptFns {
		st.acceptFns[k] = v
	}
	return st
}

// RestoreState rewinds the layer. Connections opened since the capture
// vanish (their timers are gone from the restored scheduler queue, so their
// closures never fire again); connections closed since the capture reappear
// with their timers re-armed by the scheduler's own restore.
func (l *Layer) RestoreState(state any) {
	st := state.(*layerState)
	l.conns = make(map[connKey]*Conn, len(st.conns))
	for k, c := range st.conns {
		c.restoreState(st.connStates[k])
		l.conns[k] = c
	}
	l.listeners = make(map[uint16]bool, len(st.listeners))
	for k, v := range st.listeners {
		l.listeners[k] = v
	}
	l.acceptFns = make(map[uint16]func(*Conn), len(st.acceptFns))
	for k, v := range st.acceptFns {
		l.acceptFns[k] = v
	}
	l.iss, l.ephemeral = st.iss, st.ephemeral
}
