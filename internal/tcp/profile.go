package tcp

import (
	"fmt"
	"strings"
	"time"
)

// Profile captures the externally visible behavioural parameters that
// distinguished the four vendor TCP implementations in the paper's
// experiments. The BSD-derived stacks (SunOS 4.1.3, AIX 3.2.3, NeXT Mach)
// share one shape; Solaris 2.3 (SysV-derived) is the outlier in every
// experiment.
type Profile struct {
	// Name labels the profile in traces and tables.
	Name string

	// --- retransmission (Experiments 1 & 2) ---

	// RTOMin floors the retransmission timeout. BSD used 1 s; Solaris used
	// ~330 ms (the paper measured an average of 330 ms over 30 runs).
	RTOMin time.Duration
	// RTOMax caps the exponential backoff — the 64 s upper bound the BSD
	// stacks stabilized at.
	RTOMax time.Duration
	// MaxRetransmits drops the connection after this many retransmissions
	// of one segment (BSD: 12) or, with GlobalErrorCounter, this many
	// timeouts in total (Solaris: 9).
	MaxRetransmits int
	// GlobalErrorCounter selects Solaris's per-connection fault counter:
	// every retransmission timeout increments it, and it is only cleared
	// by an ACK that arrives for a segment that was never retransmitted.
	// BSD resets its per-segment counter whenever the segment is acked.
	GlobalErrorCounter bool
	// UseJacobson selects Jacobson RTT estimation with Karn sampling. The
	// paper concluded Solaris 2.3 "either did not use Jacobson's algorithm
	// or did not select RTT measurements in the same way".
	UseJacobson bool
	// ResetOnTimeout sends a RST when the connection is dropped after
	// retransmission exhaustion (BSD yes, Solaris no).
	ResetOnTimeout bool

	// --- keep-alive (Experiment 3) ---

	// KeepAliveIdle is the idle threshold before the first probe: 7200 s
	// per spec; Solaris violated it with 6752 s.
	KeepAliveIdle time.Duration
	// KeepAliveInterval spaces unanswered probes: BSD fixed 75 s.
	KeepAliveInterval time.Duration
	// KeepAliveBackoff makes unanswered probes back off exponentially from
	// KeepAliveInterval (Solaris) instead of the fixed BSD spacing.
	KeepAliveBackoff bool
	// KeepAliveProbes is the number of unanswered retransmitted probes
	// before the connection is dropped (BSD 8, Solaris 7).
	KeepAliveProbes int
	// KeepAliveGarbage includes one byte of garbage data in the probe for
	// compatibility with older TCPs (SunOS yes; AIX and NeXT no).
	KeepAliveGarbage bool
	// ResetOnKeepAliveFail sends a RST when keep-alive gives up (BSD did;
	// Solaris closed silently).
	ResetOnKeepAliveFail bool

	// --- zero-window probing (Experiment 4) ---

	// ZWPMax caps the zero-window probe interval: 60 s BSD, 56 s Solaris
	// (the same ~0.938 clock-skew ratio as the keep-alive threshold:
	// 56/60 ≈ 6752/7200).
	ZWPMax time.Duration

	// --- general ---

	// DelayedACK enables RFC-1122 §4.2.3.2 delayed acknowledgments: a bare
	// ACK for in-order data may be withheld up to DelackTimeout or until a
	// second segment arrives. The BSD-derived stacks used them; the paper's
	// Experiment 1 cites "the receiving TCP was using delayed ACKs" as one
	// reason senders transmit the next segment promptly.
	DelayedACK bool
	// DelackTimeout bounds how long an ACK may be withheld (default 200 ms
	// when DelayedACK is set).
	DelackTimeout time.Duration

	// MSS is the maximum segment payload.
	MSS int
	// RecvBuf is the default receive buffer (advertised window) in bytes.
	RecvBuf int
	// InitialRTO seeds the timeout before any RTT measurement exists.
	InitialRTO time.Duration
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("tcp: profile has no name")
	}
	if p.RTOMin <= 0 || p.RTOMax < p.RTOMin {
		return fmt.Errorf("tcp: profile %s: bad RTO bounds [%v, %v]", p.Name, p.RTOMin, p.RTOMax)
	}
	if p.MaxRetransmits <= 0 {
		return fmt.Errorf("tcp: profile %s: MaxRetransmits must be positive", p.Name)
	}
	if p.MSS <= 0 || p.RecvBuf < p.MSS {
		return fmt.Errorf("tcp: profile %s: bad MSS %d / RecvBuf %d", p.Name, p.MSS, p.RecvBuf)
	}
	if p.KeepAliveIdle <= 0 || p.KeepAliveInterval <= 0 || p.KeepAliveProbes <= 0 {
		return fmt.Errorf("tcp: profile %s: bad keep-alive parameters", p.Name)
	}
	if p.ZWPMax <= 0 {
		return fmt.Errorf("tcp: profile %s: bad zero-window probe interval", p.Name)
	}
	if p.InitialRTO <= 0 {
		return fmt.Errorf("tcp: profile %s: bad initial RTO", p.Name)
	}
	if p.DelayedACK && p.DelackTimeout <= 0 {
		return fmt.Errorf("tcp: profile %s: DelayedACK needs a positive DelackTimeout", p.Name)
	}
	return nil
}

// bsdBase is the common shape of the three BSD-derived implementations.
func bsdBase(name string, keepAliveGarbage bool) Profile {
	return Profile{
		Name:                 name,
		RTOMin:               time.Second,
		RTOMax:               64 * time.Second,
		MaxRetransmits:       12,
		UseJacobson:          true,
		ResetOnTimeout:       true,
		KeepAliveIdle:        7200 * time.Second,
		KeepAliveInterval:    75 * time.Second,
		KeepAliveProbes:      8,
		KeepAliveGarbage:     keepAliveGarbage,
		ResetOnKeepAliveFail: true,
		ZWPMax:               60 * time.Second,
		DelayedACK:           true,
		DelackTimeout:        200 * time.Millisecond,
		MSS:                  512,
		RecvBuf:              4096,
		InitialRTO:           1500 * time.Millisecond,
	}
}

// SunOS413 is the native TCP of SunOS 4.1.3. Its keep-alive probe carries
// one byte of garbage data (SEG.SEQ = SND.NXT-1 plus 1 byte).
func SunOS413() Profile { return bsdBase("SunOS 4.1.3", true) }

// AIX323 is the native TCP of AIX 3.2.3 — BSD-derived, keep-alive probe
// with zero data bytes.
func AIX323() Profile { return bsdBase("AIX 3.2.3", false) }

// NeXTMach is the native TCP of NeXT Mach (Mach 2.5 based) — behaviourally
// identical to AIX 3.2.3 in every experiment.
func NeXTMach() Profile { return bsdBase("NeXT Mach", false) }

// Solaris23 is the native TCP of Solaris 2.3, the SysV-derived outlier:
// ~330 ms retransmission floor, no Jacobson adaptation, a global error
// counter that drops the connection after 9 timeouts total, no RST on
// timeout, a keep-alive threshold of 6752 s (a spec violation: the
// standard requires >= 7200 s), exponential keep-alive probe backoff, and
// a 56 s zero-window probe interval. The 6752/7200 == 56/60 ratio suggests
// a mis-calibrated clock tick, as the paper's footnote 3 observes.
func Solaris23() Profile {
	return Profile{
		Name:   "Solaris 2.3",
		RTOMin: 330 * time.Millisecond,
		// The paper never established a retransmission upper bound for
		// Solaris — every connection closed (9-timeout budget) before the
		// backoff could stabilize. The cap is modelled beyond the reach of
		// nine doublings from the floor so the same is true here.
		RTOMax:               1200 * time.Second,
		MaxRetransmits:       9,
		GlobalErrorCounter:   true,
		UseJacobson:          false,
		ResetOnTimeout:       false,
		KeepAliveIdle:        6752 * time.Second,
		KeepAliveInterval:    time.Second,
		KeepAliveBackoff:     true,
		KeepAliveProbes:      7,
		KeepAliveGarbage:     false,
		ResetOnKeepAliveFail: false,
		ZWPMax:               56 * time.Second,
		DelayedACK:           true,
		DelackTimeout:        200 * time.Millisecond,
		MSS:                  512,
		RecvBuf:              4096,
		InitialRTO:           330 * time.Millisecond,
	}
}

// XKernel is the paper's own x-Kernel TCP — the instrumented endpoint the
// vendor machines talked to. Standard BSD-shaped parameters.
func XKernel() Profile { return bsdBase("x-Kernel", false) }

// Profiles returns the four vendor profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{SunOS413(), AIX323(), NeXTMach(), Solaris23()}
}

// ProfileByName resolves a profile by name with forgiving matching: case
// and non-alphanumerics are ignored, and an unambiguous prefix suffices
// ("solaris", "sunos", "aix"). The empty name resolves to SunOS 4.1.3,
// the runner default everywhere. The CLIs and the fleet wire protocol
// both resolve through here, so a profile name travels between processes
// without drift.
func ProfileByName(name string) (Profile, error) {
	canon := func(s string) string {
		s = strings.ToLower(s)
		return strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
				return r
			}
			return -1
		}, s)
	}
	want := canon(name)
	all := append(Profiles(), XKernel())
	for _, p := range all {
		if pc := canon(p.Name); pc == want || strings.HasPrefix(pc, want) {
			return p, nil
		}
	}
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name
	}
	return Profile{}, fmt.Errorf("tcp: unknown profile %q (have %s)", name, strings.Join(names, ", "))
}
