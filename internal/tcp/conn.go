package tcp

import (
	"fmt"
	"time"

	"pfi/internal/simtime"
)

// State is a TCP connection state (RFC-793 §3.2).
type State int

// Connection states.
const (
	StateClosed State = iota + 1
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = map[State]string{
	StateClosed:      "CLOSED",
	StateListen:      "LISTEN",
	StateSynSent:     "SYN-SENT",
	StateSynRcvd:     "SYN-RCVD",
	StateEstablished: "ESTABLISHED",
	StateFinWait1:    "FIN-WAIT-1",
	StateFinWait2:    "FIN-WAIT-2",
	StateCloseWait:   "CLOSE-WAIT",
	StateClosing:     "CLOSING",
	StateLastAck:     "LAST-ACK",
	StateTimeWait:    "TIME-WAIT",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// timeWaitDur is 2*MSL for the TIME-WAIT hold.
const timeWaitDur = 60 * time.Second

// sentSeg is one transmitted, not-yet-acknowledged segment.
type sentSeg struct {
	seg         *Segment
	end         uint32 // Seq + SeqSpace
	firstSentAt simtime.Time
	retransmits int
}

// Conn is one TCP connection endpoint. All methods must be called from the
// simulation's event loop (single-threaded by design).
type Conn struct {
	layer *Layer
	prof  Profile
	est   *rtoEstimator

	state      State
	localPort  uint16
	remoteNode string
	remotePort uint16

	// Send sequence space (RFC-793 names).
	iss    uint32
	sndUna uint32
	sndNxt uint32
	sndWnd int

	sendQ   []byte // data accepted from the app, not yet segmented
	unacked []*sentSeg

	rtxTimer *simtime.Event
	// rtxCount counts consecutive timeouts of the oldest segment (the BSD
	// per-segment retry counter).
	rtxCount int
	// globalErr is the Solaris per-connection fault counter: incremented on
	// every timeout, cleared only by a "clean" ACK (one that newly
	// acknowledges at least one never-retransmitted segment).
	globalErr int
	// backoff is the current retransmission backoff exponent; per Karn's
	// algorithm it persists across segments until a valid RTT sample.
	backoff int

	// Round-trip timing (one segment at a time; Karn's rule).
	timingValid  bool
	timedEnd     uint32
	timedAt      simtime.Time
	timedRetrans bool

	// Receive sequence space.
	irs         uint32
	rcvNxt      uint32
	recvBufSize int
	recvQ       []byte            // accepted, not yet consumed by the app
	oooQ        map[uint32][]byte // out-of-order segments keyed by seq
	autoConsume bool

	// Keep-alive.
	keepAlive bool
	kaTimer   *simtime.Event
	kaProbing bool
	kaRetrans int

	// Zero-window probing.
	zwpTimer *simtime.Event
	zwpCount int
	zwpEver  bool

	// Delayed acknowledgment (RFC-1122 SHOULD; profile-dependent).
	delackTimer   *simtime.Event
	delackPending int

	timeWaitTimer *simtime.Event

	// Callbacks (any may be nil).
	onEstablished func()
	onData        func(data []byte)
	onClose       func(reason string)

	closeReason string
}

// newConn builds a connection in the given initial state.
func (l *Layer) newConn(state State, localPort uint16, remoteNode string, remotePort uint16) *Conn {
	c := &Conn{
		layer:       l,
		prof:        l.prof,
		est:         newRTOEstimator(l.prof),
		state:       state,
		localPort:   localPort,
		remoteNode:  remoteNode,
		remotePort:  remotePort,
		recvBufSize: l.prof.RecvBuf,
		oooQ:        make(map[uint32][]byte),
		autoConsume: true,
	}
	c.iss = l.nextISS()
	c.sndUna = c.iss
	c.sndNxt = c.iss
	c.sndWnd = l.prof.MSS // conservative until the peer advertises
	return c
}

// --- public API -----------------------------------------------------------

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteNode returns the peer's node name.
func (c *Conn) RemoteNode() string { return c.remoteNode }

// RemotePort returns the peer's port.
func (c *Conn) RemotePort() uint16 { return c.remotePort }

// CloseReason reports why the connection reached CLOSED ("" while open).
func (c *Conn) CloseReason() string { return c.closeReason }

// UnackedSegments reports in-flight segments awaiting acknowledgment.
func (c *Conn) UnackedSegments() int { return len(c.unacked) }

// OnEstablished registers the connection-up callback.
func (c *Conn) OnEstablished(fn func()) { c.onEstablished = fn }

// OnData registers the inbound-data callback. With auto-consume enabled
// (the default) it fires as data arrives in order.
func (c *Conn) OnData(fn func(data []byte)) { c.onData = fn }

// OnClose registers the teardown callback with a human-readable reason.
func (c *Conn) OnClose(fn func(reason string)) { c.onClose = fn }

// SetKeepAlive turns keep-alive probing on or off (off per spec default).
func (c *Conn) SetKeepAlive(on bool) {
	c.keepAlive = on
	if on {
		c.armKeepAliveIdle()
	} else if c.kaTimer != nil {
		c.sched().Cancel(c.kaTimer)
		c.kaProbing = false
	}
}

// SetAutoConsume controls receive-buffer draining. Disabling it emulates
// the paper's zero-window experiment setup, where the driver "did not
// reset the receive buffer space": accepted data accumulates until the
// advertised window reaches zero.
func (c *Conn) SetAutoConsume(on bool) { c.autoConsume = on }

// Consume removes up to n bytes from the receive buffer, reopening the
// advertised window, and returns them.
func (c *Conn) Consume(n int) []byte {
	if n > len(c.recvQ) {
		n = len(c.recvQ)
	}
	data := c.recvQ[:n]
	c.recvQ = c.recvQ[n:]
	// The window may have reopened; tell the peer (the "ACK segment that
	// re-opens the window" the spec warns may be lost).
	if c.state == StateEstablished && n > 0 {
		c.sendACK()
	}
	return data
}

// RecvBuffered reports bytes accepted but not yet consumed.
func (c *Conn) RecvBuffered() int { return len(c.recvQ) }

// recvWindow is the space the connection advertises.
func (c *Conn) recvWindow() int {
	w := c.recvBufSize - len(c.recvQ)
	if w < 0 {
		return 0
	}
	if w > 0xFFFF {
		return 0xFFFF
	}
	return w
}

// Send queues application data for transmission.
func (c *Conn) Send(data []byte) error {
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynRcvd:
	default:
		return fmt.Errorf("tcp: send in state %v", c.state)
	}
	c.sendQ = append(c.sendQ, data...)
	c.pump()
	return nil
}

// Close initiates an orderly shutdown (FIN).
func (c *Conn) Close() error {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	case StateSynSent, StateSynRcvd:
		c.drop("closed before establishment", false)
		return nil
	case StateClosed:
		return nil
	default:
		return fmt.Errorf("tcp: close in state %v", c.state)
	}
	c.sendControl(FlagFIN|FlagACK, true)
	return nil
}

// Abort resets the connection immediately (RST to peer).
func (c *Conn) Abort() { c.drop("aborted by user", true) }

// --- plumbing ---------------------------------------------------------------

func (c *Conn) sched() *simtime.Scheduler { return c.layer.env.Sched }

func (c *Conn) now() simtime.Time { return c.sched().Now() }

// transmit encodes and ships a segment toward the peer.
func (c *Conn) transmit(seg *Segment) {
	c.layer.transmit(c.remoteNode, seg)
}

func (c *Conn) baseSegment(flags uint8) *Segment {
	return &Segment{
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		Seq:     c.sndNxt,
		Ack:     c.rcvNxt,
		Flags:   flags,
		Window:  uint16(c.recvWindow()),
	}
}

// sendControl transmits a flags-only segment that occupies sequence space
// (SYN/FIN); if track, it joins the retransmission queue.
func (c *Conn) sendControl(flags uint8, track bool) {
	seg := c.baseSegment(flags)
	space := seg.SeqSpace()
	c.sndNxt += space
	if track && space > 0 {
		c.trackSent(seg)
	}
	c.transmit(seg)
}

// sendACK transmits a bare acknowledgment (does not occupy seq space and
// is never retransmitted — which is why zero-window probing must exist).
// Any withheld delayed ACK is satisfied by it.
func (c *Conn) sendACK() {
	c.delackPending = 0
	if c.delackTimer != nil {
		c.sched().Cancel(c.delackTimer)
	}
	c.transmit(c.baseSegment(FlagACK))
}

// ackInOrderData acknowledges freshly accepted in-order data, withholding
// the ACK per the delayed-ACK policy when the profile uses one: at most
// one ACK per two segments, and never delayed past DelackTimeout.
func (c *Conn) ackInOrderData() {
	if !c.prof.DelayedACK {
		c.sendACK()
		return
	}
	c.delackPending++
	if c.delackPending >= 2 {
		c.sendACK()
		return
	}
	if c.delackTimer == nil || !c.delackTimer.Pending() {
		c.delackTimer = c.sched().After(c.prof.DelackTimeout, "tcp-delack", func() {
			if c.state == StateEstablished || c.state == StateCloseWait {
				c.sendACK()
			}
		})
	}
}

func (c *Conn) trackSent(seg *Segment) {
	ss := &sentSeg{seg: seg, end: seg.Seq + seg.SeqSpace(), firstSentAt: c.now()}
	c.unacked = append(c.unacked, ss)
	if !c.timingValid {
		c.timingValid = true
		c.timedEnd = ss.end
		c.timedAt = c.now()
		c.timedRetrans = false
	}
	c.armRtx()
}

// pump transmits queued data within the send window.
func (c *Conn) pump() {
	if c.state != StateEstablished && c.state != StateCloseWait {
		return
	}
	for len(c.sendQ) > 0 {
		inFlight := int(c.sndNxt - c.sndUna)
		room := c.sndWnd - inFlight
		if room <= 0 {
			if c.sndWnd == 0 {
				c.startZWP()
			}
			return
		}
		n := c.prof.MSS
		if n > room {
			n = room
		}
		if n > len(c.sendQ) {
			n = len(c.sendQ)
		}
		payload := append([]byte(nil), c.sendQ[:n]...)
		c.sendQ = c.sendQ[n:]
		seg := c.baseSegment(FlagACK | FlagPSH)
		seg.Payload = payload
		c.sndNxt += uint32(n)
		c.trackSent(seg)
		c.transmit(seg)
	}
}

// --- retransmission -----------------------------------------------------------

func (c *Conn) armRtx() {
	d := c.est.backedOff(c.backoff)
	if c.rtxTimer != nil && c.rtxTimer.Pending() {
		return // timer already running for the oldest segment
	}
	c.rtxTimer = c.sched().After(d, "tcp-rtx "+c.layer.env.Node, c.onRtxTimeout)
}

func (c *Conn) rearmRtx() {
	if c.rtxTimer != nil {
		c.sched().Cancel(c.rtxTimer)
	}
	if len(c.unacked) == 0 {
		return
	}
	c.rtxTimer = c.sched().After(c.est.backedOff(c.backoff), "tcp-rtx "+c.layer.env.Node, c.onRtxTimeout)
}

func (c *Conn) onRtxTimeout() {
	if len(c.unacked) == 0 || c.state == StateClosed {
		return
	}
	// Give up?
	if c.prof.GlobalErrorCounter {
		if c.globalErr >= c.prof.MaxRetransmits {
			c.drop("retransmission limit (global error counter)", c.prof.ResetOnTimeout)
			return
		}
	} else if c.rtxCount >= c.prof.MaxRetransmits {
		c.drop("retransmission limit", c.prof.ResetOnTimeout)
		return
	}
	oldest := c.unacked[0]
	oldest.retransmits++
	c.rtxCount++
	c.globalErr++
	c.backoff++
	if c.timingValid && seqLEQ(c.timedEnd, oldest.end) {
		// Karn: the timed segment was retransmitted; its sample is
		// ambiguous and must be discarded.
		c.timedRetrans = true
	}
	// Refresh ack/window fields on the retransmission.
	oldest.seg.Ack = c.rcvNxt
	oldest.seg.Window = uint16(c.recvWindow())
	c.layer.logEvent(c, "retransmit", oldest.seg)
	c.transmit(oldest.seg)
	c.rtxTimer = c.sched().After(c.est.backedOff(c.backoff), "tcp-rtx "+c.layer.env.Node, c.onRtxTimeout)
}

// --- segment arrival ------------------------------------------------------------

// handleSegment is the connection's input function.
func (c *Conn) handleSegment(seg *Segment) {
	if c.state == StateClosed {
		return
	}
	if seg.Has(FlagRST) {
		if c.state == StateSynSent && (!seg.Has(FlagACK) || seg.Ack != c.iss+1) {
			return // RST not for our SYN
		}
		c.drop("connection reset by peer", false)
		return
	}

	switch c.state {
	case StateSynSent:
		c.handleSynSent(seg)
		return
	case StateSynRcvd:
		if seg.Has(FlagACK) && seg.Ack == c.iss+1 {
			c.establish(seg)
			// Fall through to normal processing for any piggybacked data.
		} else if seg.Has(FlagSYN) {
			// Duplicate SYN: repeat the SYN-ACK.
			c.retransmitHandshake()
			return
		} else {
			return
		}
	case StateListen, StateClosed:
		return
	}

	// ESTABLISHED and later states.
	if seg.Has(FlagACK) {
		c.processAck(seg)
		if c.state == StateClosed {
			return
		}
	}
	if seg.Len() > 0 || seg.Has(FlagFIN) {
		c.processPayload(seg)
	} else if seg.Len() == 0 && seqLess(seg.Seq, c.rcvNxt) {
		// An old (below-window) empty segment — a keep-alive probe with no
		// data, or a retransmitted SYN-ACK whose handshake ACK was lost —
		// must elicit an ACK.
		c.sendACK()
	}
	// Any traffic from the peer proves liveness: keep-alive goes back to
	// the idle phase.
	c.keepAliveActivity()
}

func (c *Conn) handleSynSent(seg *Segment) {
	if !seg.Has(FlagSYN) {
		return
	}
	if seg.Has(FlagACK) && seg.Ack != c.iss+1 {
		return // bogus
	}
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq + 1
	if seg.Has(FlagACK) {
		c.ackHandshake(seg.Ack)
		c.state = StateEstablished
		c.sndWnd = int(seg.Window)
		c.sendACK()
		c.layer.logEvent(c, "established", seg)
		if c.onEstablished != nil {
			c.onEstablished()
		}
		c.pump()
		if c.keepAlive {
			c.armKeepAliveIdle()
		}
		return
	}
	// Simultaneous open: SYN without ACK.
	c.state = StateSynRcvd
	c.sendControl(FlagSYN|FlagACK, false)
}

// ackHandshake consumes the SYN's sequence slot from the rtx queue.
func (c *Conn) ackHandshake(ack uint32) {
	c.sndUna = ack
	c.dropAcked(ack)
	c.rtxCount = 0
	c.backoff = 0
	c.rearmRtx()
}

func (c *Conn) establish(seg *Segment) {
	c.state = StateEstablished
	c.sndWnd = int(seg.Window)
	c.ackHandshake(seg.Ack)
	c.layer.logEvent(c, "established", seg)
	if c.onEstablished != nil {
		c.onEstablished()
	}
	if c.layer.acceptFns[c.localPort] != nil {
		c.layer.acceptFns[c.localPort](c)
	}
	c.pump()
	if c.keepAlive {
		c.armKeepAliveIdle()
	}
}

func (c *Conn) retransmitHandshake() {
	seg := c.baseSegment(FlagSYN | FlagACK)
	seg.Seq = c.iss
	c.transmit(seg)
}

// dropAcked removes fully acknowledged segments, returning how many were
// removed and whether any removed segment was never retransmitted.
func (c *Conn) dropAcked(ack uint32) (removed int, anyClean bool) {
	i := 0
	for i < len(c.unacked) && seqLEQ(c.unacked[i].end, ack) {
		if c.unacked[i].retransmits == 0 {
			anyClean = true
		}
		i++
	}
	if i > 0 {
		c.unacked = c.unacked[i:]
	}
	return i, anyClean
}

func (c *Conn) processAck(seg *Segment) {
	if seqLess(c.sndUna, seg.Ack) && seqLEQ(seg.Ack, c.sndNxt) {
		// New data acknowledged. (FIN status must be read before the acked
		// segments — including the FIN — leave the queue.)
		ackedFin := c.finOutstanding() && seg.Ack == c.sndNxt
		removed, anyClean := c.dropAcked(seg.Ack)
		c.sndUna = seg.Ack

		// Round-trip sampling.
		if c.timingValid && seqLEQ(c.timedEnd, seg.Ack) {
			rtt := time.Duration(c.now().Sub(c.timedAt))
			if c.prof.UseJacobson {
				if !c.timedRetrans { // Karn's rule
					c.est.sample(rtt)
					c.backoff = 0
				}
			} else {
				// Solaris-style crude sampling: no Karn exclusion, no
				// smoothing (see rtoEstimator).
				c.est.sampleCrude(rtt)
				c.backoff = 0
			}
			c.timingValid = false
		}

		// Retry accounting.
		c.rtxCount = 0
		if !c.prof.UseJacobson {
			c.backoff = 0
		}
		if anyClean {
			c.globalErr = 0
		}
		_ = removed
		c.rearmRtx()

		if ackedFin {
			c.finAcked()
		}
	}
	c.sndWnd = int(seg.Window)
	if c.sndWnd > 0 {
		c.stopZWP()
		c.pump()
	} else if len(c.sendQ) > 0 || c.zwpEver {
		c.startZWP()
	}
}

func (c *Conn) finOutstanding() bool {
	for _, ss := range c.unacked {
		if ss.seg.Has(FlagFIN) {
			return true
		}
	}
	return false
}

func (c *Conn) finAcked() {
	switch c.state {
	case StateFinWait1:
		c.state = StateFinWait2
	case StateClosing:
		c.enterTimeWait()
	case StateLastAck:
		c.finish("connection closed")
	}
}

func (c *Conn) processPayload(seg *Segment) {
	switch {
	case seg.Seq == c.rcvNxt:
		c.acceptInOrder(seg)
	case seqLess(c.rcvNxt, seg.Seq):
		// Future segment: queue it (RFC-1122 says a TCP SHOULD queue
		// out-of-order segments; all four vendor stacks did) and ACK to
		// show the gap.
		if len(c.oooQ) < 64 && seg.Len() > 0 {
			c.oooQ[seg.Seq] = append([]byte(nil), seg.Payload...)
		}
		c.sendACK()
	default:
		// Old or duplicate data (retransmission overlap, keep-alive with
		// garbage byte): already received, re-ACK it.
		c.sendACK()
	}
}

func (c *Conn) acceptInOrder(seg *Segment) {
	data := seg.Payload
	space := c.recvBufSize - len(c.recvQ)
	if len(data) > space {
		data = data[:space] // receiver trims what it has no room for
	}
	if len(data) > 0 {
		c.rcvNxt += uint32(len(data))
		if c.autoConsume {
			if c.onData != nil {
				c.onData(append([]byte(nil), data...))
			}
		} else {
			c.recvQ = append(c.recvQ, data...)
			if c.onData != nil {
				c.onData(append([]byte(nil), data...))
			}
		}
	}
	// Drain any queued out-of-order segments that are now in order.
	for {
		next, ok := c.oooQ[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.oooQ, c.rcvNxt)
		space := c.recvBufSize - len(c.recvQ)
		if len(next) > space {
			next = next[:space]
		}
		if len(next) == 0 {
			break
		}
		c.rcvNxt += uint32(len(next))
		if c.autoConsume {
			if c.onData != nil {
				c.onData(next)
			}
		} else {
			c.recvQ = append(c.recvQ, next...)
			if c.onData != nil {
				c.onData(next)
			}
		}
	}
	if seg.Has(FlagFIN) && seg.Seq+uint32(seg.Len()) == c.rcvNxt {
		c.rcvNxt++
		c.handleFIN()
		c.sendACK() // FIN is acknowledged immediately
		return
	}
	c.ackInOrderData()
}

func (c *Conn) handleFIN() {
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait1:
		// Our FIN not yet acked: simultaneous close.
		c.state = StateClosing
	case StateFinWait2:
		c.enterTimeWait()
	}
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.cancelTimers()
	c.timeWaitTimer = c.sched().After(timeWaitDur, "tcp-timewait", func() {
		c.finish("connection closed")
	})
}

// --- keep-alive -------------------------------------------------------------------

func (c *Conn) armKeepAliveIdle() {
	if !c.keepAlive || c.state != StateEstablished {
		return
	}
	if c.kaTimer != nil {
		c.sched().Cancel(c.kaTimer)
	}
	c.kaProbing = false
	c.kaRetrans = 0
	c.kaTimer = c.sched().After(c.prof.KeepAliveIdle, "tcp-keepalive-idle", c.onKeepAliveTimer)
}

func (c *Conn) keepAliveActivity() {
	if c.keepAlive && c.state == StateEstablished {
		c.armKeepAliveIdle()
	}
}

func (c *Conn) onKeepAliveTimer() {
	if !c.keepAlive || c.state != StateEstablished {
		return
	}
	if c.kaProbing {
		c.kaRetrans++
		if c.kaRetrans > c.prof.KeepAliveProbes {
			c.drop("keep-alive timeout", c.prof.ResetOnKeepAliveFail)
			return
		}
	} else {
		c.kaProbing = true
		c.kaRetrans = 0
	}
	c.sendKeepAliveProbe()
	interval := c.prof.KeepAliveInterval
	if c.prof.KeepAliveBackoff {
		for i := 0; i < c.kaRetrans; i++ {
			interval *= 2
			if interval > c.prof.RTOMax {
				interval = c.prof.RTOMax
				break
			}
		}
	}
	c.kaTimer = c.sched().After(interval, "tcp-keepalive-probe", c.onKeepAliveTimer)
}

// sendKeepAliveProbe emits the probe in the profile's format:
// SEG.SEQ = SND.NXT-1, with one byte of garbage data on SunOS.
func (c *Conn) sendKeepAliveProbe() {
	seg := c.baseSegment(FlagACK)
	seg.Seq = c.sndNxt - 1
	if c.prof.KeepAliveGarbage {
		seg.Payload = []byte{0}
	}
	c.layer.logEvent(c, "keepalive", seg)
	c.transmit(seg)
}

// --- zero-window probing -----------------------------------------------------------

func (c *Conn) startZWP() {
	if c.zwpTimer != nil && c.zwpTimer.Pending() {
		return
	}
	c.zwpEver = true
	c.zwpCount = 0
	c.zwpTimer = c.sched().After(c.zwpInterval(), "tcp-zwp", c.onZWPTimer)
}

func (c *Conn) stopZWP() {
	if c.zwpTimer != nil {
		c.sched().Cancel(c.zwpTimer)
	}
	c.zwpEver = false
	c.zwpCount = 0
}

func (c *Conn) zwpInterval() time.Duration {
	d := c.est.rto()
	for i := 0; i < c.zwpCount; i++ {
		d *= 2
		if d >= c.prof.ZWPMax {
			return c.prof.ZWPMax
		}
	}
	if d > c.prof.ZWPMax {
		return c.prof.ZWPMax
	}
	return d
}

// onZWPTimer sends a window probe. Probing continues indefinitely whether
// or not the probes are acknowledged — the behaviour the paper confirmed
// with the two-day unplugged-Ethernet test on all four stacks.
func (c *Conn) onZWPTimer() {
	if c.state != StateEstablished || c.sndWnd > 0 {
		return
	}
	if len(c.sendQ) == 0 && len(c.unacked) == 0 {
		return
	}
	seg := c.baseSegment(FlagACK)
	if len(c.sendQ) > 0 {
		seg.Payload = []byte{c.sendQ[0]} // probe carries one byte past the window
	}
	c.layer.logEvent(c, "zwp", seg)
	c.transmit(seg)
	c.zwpCount++
	c.zwpTimer = c.sched().After(c.zwpInterval(), "tcp-zwp", c.onZWPTimer)
}

// --- teardown ----------------------------------------------------------------------

func (c *Conn) cancelTimers() {
	s := c.sched()
	for _, ev := range []*simtime.Event{c.rtxTimer, c.kaTimer, c.zwpTimer, c.timeWaitTimer, c.delackTimer} {
		if ev != nil {
			s.Cancel(ev)
		}
	}
}

// drop terminates abnormally, optionally notifying the peer with a RST.
func (c *Conn) drop(reason string, sendRST bool) {
	if c.state == StateClosed {
		return
	}
	if sendRST {
		seg := c.baseSegment(FlagRST | FlagACK)
		c.layer.logEvent(c, "reset", seg)
		c.transmit(seg)
	}
	c.finish(reason)
}

// finish moves to CLOSED and releases resources.
func (c *Conn) finish(reason string) {
	if c.state == StateClosed {
		return
	}
	c.cancelTimers()
	c.state = StateClosed
	c.closeReason = reason
	c.layer.forget(c)
	c.layer.logEventNote(c, "closed", reason)
	if c.onClose != nil {
		c.onClose(reason)
	}
}
