package tcp

import (
	"fmt"
	"strconv"

	"pfi/internal/core"
	"pfi/internal/message"
)

// PFIStub is the TCP packet recognition/generation stub for the PFI layer —
// the kind of stub the paper says "may be supplied by the system for a
// popular protocol such as TCP whose packet formats are known".
//
// Recognition classifies segments as SYN, SYN-ACK, ACK, DATA, FIN, or RST
// and exposes the header fields (seq, ack, flags, win, len, srcport,
// dstport) to filter scripts. Generation builds stateless segments —
// spurious ACKs and RSTs, the paper's examples of messages that need no
// protocol-state update. DATA generation is refused: sequence-consuming
// sends belong to the driver layer.
type PFIStub struct{}

var _ core.Stub = PFIStub{}

// Protocol implements core.Stub.
func (PFIStub) Protocol() string { return "tcp" }

// Recognize implements core.Stub.
func (PFIStub) Recognize(m *message.Message) (core.Info, error) {
	seg, err := Decode(m)
	if err != nil {
		return core.Info{}, err
	}
	return core.Info{Type: seg.Type(), Fields: seg.Fields()}, nil
}

// Generate implements core.Stub.
func (PFIStub) Generate(typ string, fields map[string]string) (*message.Message, error) {
	var flags uint8
	switch typ {
	case "ACK":
		flags = FlagACK
	case "RST":
		flags = FlagRST | FlagACK
	case "SYN":
		flags = FlagSYN
	case "FIN":
		flags = FlagFIN | FlagACK
	default:
		return nil, fmt.Errorf("tcp stub: cannot generate %q without protocol state (use the driver layer)", typ)
	}
	seg := &Segment{Flags: flags}
	var err error
	if seg.SrcPort, err = fieldU16(fields, "srcport"); err != nil {
		return nil, err
	}
	if seg.DstPort, err = fieldU16(fields, "dstport"); err != nil {
		return nil, err
	}
	if seg.Seq, err = fieldU32(fields, "seq"); err != nil {
		return nil, err
	}
	if seg.Ack, err = fieldU32(fields, "ack"); err != nil {
		return nil, err
	}
	if seg.Window, err = fieldU16(fields, "win"); err != nil {
		return nil, err
	}
	return seg.Encode(), nil
}

func fieldU16(fields map[string]string, name string) (uint16, error) {
	s, ok := fields[name]
	if !ok {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("tcp stub: bad %s %q", name, s)
	}
	return uint16(v), nil
}

func fieldU32(fields map[string]string, name string) (uint32, error) {
	s, ok := fields[name]
	if !ok {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("tcp stub: bad %s %q", name, s)
	}
	return uint32(v), nil
}
