package tcp

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"pfi/internal/message"
)

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	seg := &Segment{
		SrcPort: 32769, DstPort: 80, Seq: 1<<31 + 7, Ack: 42,
		Flags: FlagACK | FlagPSH, Window: 4096,
		Payload: []byte("payload bytes"),
	}
	m := seg.Encode()
	got, err := Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != seg.SrcPort || got.DstPort != seg.DstPort ||
		got.Seq != seg.Seq || got.Ack != seg.Ack ||
		got.Flags != seg.Flags || got.Window != seg.Window ||
		!bytes.Equal(got.Payload, seg.Payload) {
		t.Fatalf("round trip: got %+v, want %+v", got, seg)
	}
}

func TestPropertySegmentRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		seg := &Segment{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags, Window: win, Payload: payload}
		got, err := Decode(seg.Encode())
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && got.Seq == seq &&
			got.Ack == ack && got.Flags == flags && got.Window == win &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortSegment(t *testing.T) {
	if _, err := Decode(message.New([]byte{1, 2, 3})); err == nil {
		t.Fatal("short segment decoded")
	}
}

func TestSegmentType(t *testing.T) {
	tests := []struct {
		flags   uint8
		payload int
		want    string
	}{
		{FlagSYN, 0, "SYN"},
		{FlagSYN | FlagACK, 0, "SYN-ACK"},
		{FlagACK, 0, "ACK"},
		{FlagACK, 10, "DATA"},
		{FlagACK | FlagPSH, 10, "DATA"},
		{FlagFIN | FlagACK, 0, "FIN"},
		{FlagRST | FlagACK, 0, "RST"},
	}
	for _, tt := range tests {
		seg := &Segment{Flags: tt.flags, Payload: make([]byte, tt.payload)}
		if got := seg.Type(); got != tt.want {
			t.Errorf("Type(flags=%#x, len=%d) = %q, want %q", tt.flags, tt.payload, got, tt.want)
		}
	}
}

func TestSeqSpace(t *testing.T) {
	if n := (&Segment{Flags: FlagSYN}).SeqSpace(); n != 1 {
		t.Errorf("SYN SeqSpace = %d", n)
	}
	if n := (&Segment{Flags: FlagFIN, Payload: []byte("ab")}).SeqSpace(); n != 3 {
		t.Errorf("FIN+2 SeqSpace = %d", n)
	}
	if n := (&Segment{Flags: FlagACK}).SeqSpace(); n != 0 {
		t.Errorf("bare ACK SeqSpace = %d", n)
	}
}

func TestSeqArithmeticWraps(t *testing.T) {
	if !seqLess(0xFFFFFFF0, 0x10) {
		t.Error("wrap-around comparison failed")
	}
	if seqLess(0x10, 0xFFFFFFF0) {
		t.Error("wrap-around comparison inverted")
	}
	if !seqLEQ(5, 5) {
		t.Error("seqLEQ not reflexive")
	}
}

func TestFields(t *testing.T) {
	seg := &Segment{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4,
		Flags: FlagSYN | FlagACK, Window: 5, Payload: []byte("xy")}
	f := seg.Fields()
	want := map[string]string{
		"srcport": "1", "dstport": "2", "seq": "3", "ack": "4",
		"flags": "SYN|ACK", "win": "5", "len": "2",
	}
	for k, v := range want {
		if f[k] != v {
			t.Errorf("Fields[%s] = %q, want %q", k, f[k], v)
		}
	}
}

func TestRTOEstimatorJacobson(t *testing.T) {
	e := newRTOEstimator(SunOS413())
	if got := e.rto(); got != 1500*time.Millisecond {
		t.Fatalf("initial rto = %v", got)
	}
	e.sample(100 * time.Millisecond)
	// First sample: SRTT=100ms, RTTVAR=50ms, RTO=300ms -> floored to 1 s.
	if got := e.rto(); got != time.Second {
		t.Fatalf("rto after small sample = %v, want floor 1 s", got)
	}
	// Feed a run of 3 s samples; RTO converges to just over 3 s.
	for i := 0; i < 40; i++ {
		e.sample(3 * time.Second)
	}
	if got := e.rto(); got < 3*time.Second || got > 5*time.Second {
		t.Fatalf("rto after 3 s samples = %v", got)
	}
}

func TestRTOEstimatorBackoffCaps(t *testing.T) {
	e := newRTOEstimator(SunOS413())
	e.sample(100 * time.Millisecond) // rto = 1 s floor
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		16 * time.Second, 32 * time.Second, 64 * time.Second,
		64 * time.Second, 64 * time.Second,
	}
	for n, w := range want {
		if got := e.backedOff(n); got != w {
			t.Errorf("backedOff(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestRTOEstimatorSolarisCrude(t *testing.T) {
	e := newRTOEstimator(Solaris23())
	if got := e.rto(); got != 330*time.Millisecond {
		t.Fatalf("Solaris initial rto = %v", got)
	}
	// Jacobson samples are ignored in crude mode.
	e.sample(10 * time.Second)
	if got := e.rto(); got != 330*time.Millisecond {
		t.Fatalf("Solaris rto moved on jacobson sample: %v", got)
	}
	// Crude sampling adopts 0.8x the last measurement.
	e.sampleCrude(3 * time.Second)
	if got := e.rto(); got != 2400*time.Millisecond {
		t.Fatalf("Solaris crude rto = %v, want 2.4 s", got)
	}
	// And a short measurement pulls it straight back to the floor.
	e.sampleCrude(5 * time.Millisecond)
	if got := e.rto(); got != 330*time.Millisecond {
		t.Fatalf("Solaris crude rto after LAN sample = %v, want floor", got)
	}
}

func TestProfileValidation(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("vendor profile %s invalid: %v", p.Name, err)
		}
	}
	if err := (Profile{}).Validate(); err == nil {
		t.Error("zero profile validated")
	}
	bad := SunOS413()
	bad.RTOMax = bad.RTOMin - 1
	if err := bad.Validate(); err == nil {
		t.Error("inverted RTO bounds validated")
	}
	bad = SunOS413()
	bad.MSS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MSS validated")
	}
}

func TestVendorProfileDistinctions(t *testing.T) {
	sun, aix, next, sol := SunOS413(), AIX323(), NeXTMach(), Solaris23()
	// The three BSD stacks share every behavioural parameter except the
	// keep-alive garbage byte (SunOS only).
	if !sun.KeepAliveGarbage || aix.KeepAliveGarbage || next.KeepAliveGarbage {
		t.Error("keep-alive garbage byte: want SunOS only")
	}
	if sun.MaxRetransmits != 12 || sol.MaxRetransmits != 9 {
		t.Error("retransmit limits: want BSD 12, Solaris 9")
	}
	if !sol.GlobalErrorCounter || sun.GlobalErrorCounter {
		t.Error("global error counter: want Solaris only")
	}
	if sol.UseJacobson || !sun.UseJacobson {
		t.Error("Jacobson: want BSD only")
	}
	if sol.KeepAliveIdle != 6752*time.Second || sun.KeepAliveIdle != 7200*time.Second {
		t.Error("keep-alive idle thresholds wrong")
	}
	if sol.ZWPMax != 56*time.Second || sun.ZWPMax != 60*time.Second {
		t.Error("zero-window probe caps wrong")
	}
	// The paper's footnote: 56/60 ≈ 6752/7200 (the clock-skew ratio),
	// equal to within half a percent.
	ratioZWP := 56.0 / 60.0
	ratioKA := 6752.0 / 7200.0
	if diff := ratioKA - ratioZWP; diff < -0.005 || diff > 0.005 {
		t.Errorf("clock-skew ratios diverge: %v vs %v", ratioZWP, ratioKA)
	}
}

func TestPFIStubRecognize(t *testing.T) {
	stub := PFIStub{}
	seg := &Segment{SrcPort: 9, DstPort: 80, Seq: 100, Flags: FlagACK | FlagPSH,
		Window: 512, Payload: []byte("hi")}
	info, err := stub.Recognize(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if info.Type != "DATA" || info.Field("seq") != "100" || info.Field("len") != "2" {
		t.Fatalf("info %+v", info)
	}
	if _, err := stub.Recognize(message.New([]byte{0})); err == nil {
		t.Fatal("short packet recognized")
	}
}

func TestPFIStubGenerate(t *testing.T) {
	stub := PFIStub{}
	m, err := stub.Generate("ACK", map[string]string{
		"srcport": "80", "dstport": "9", "seq": "5", "ack": "6", "win": "100",
	})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Type() != "ACK" || seg.Seq != 5 || seg.Ack != 6 || seg.Window != 100 {
		t.Fatalf("generated %v", seg)
	}
	if _, err := stub.Generate("DATA", nil); err == nil {
		t.Fatal("stateless stub generated DATA")
	}
	if _, err := stub.Generate("ACK", map[string]string{"seq": "banana"}); err == nil {
		t.Fatal("bad field accepted")
	}
	if m, err := stub.Generate("RST", nil); err != nil {
		t.Fatal(err)
	} else if seg, _ := Decode(m); seg.Type() != "RST" {
		t.Fatalf("generated %v, want RST", seg)
	}
}

func BenchmarkSegmentEncode(b *testing.B) {
	seg := &Segment{SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: FlagACK,
		Window: 512, Payload: bytes.Repeat([]byte("x"), 512)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seg.Encode()
	}
}

func BenchmarkSegmentDecode(b *testing.B) {
	m := (&Segment{Flags: FlagACK, Payload: bytes.Repeat([]byte("x"), 512)}).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(m); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode(message.New(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
