// Package tcp is a from-scratch TCP implementation (RFC-793/RFC-1122
// semantics at the granularity the paper's experiments probe): three-way
// handshake, sliding-window data transfer with cumulative ACKs,
// Jacobson/Karn retransmission timing with exponential backoff,
// out-of-order segment queueing, keep-alive probing, zero-window probing,
// and reset handling.
//
// The four vendor TCPs the paper tested (SunOS 4.1.3, AIX 3.2.3, NeXT Mach,
// Solaris 2.3) are closed source; they are reproduced here as behaviour
// Profiles (see profile.go) so the PFI tool can re-discover their
// externally visible differences, which is exactly what the paper's
// experiments did.
package tcp

import (
	"fmt"
	"strconv"
	"strings"

	"pfi/internal/message"
)

// Flag bits, matching real TCP's control-bit layout.
const (
	FlagFIN = 0x01
	FlagSYN = 0x02
	FlagRST = 0x04
	FlagPSH = 0x08
	FlagACK = 0x10
)

// HeaderLen is the fixed encoded header size in bytes.
const HeaderLen = 15

// Segment is a decoded TCP segment.
type Segment struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Payload []byte
}

// Has reports whether all the given flag bits are set.
func (s *Segment) Has(flags uint8) bool { return s.Flags&flags == flags }

// Len returns the payload length.
func (s *Segment) Len() int { return len(s.Payload) }

// SeqSpace returns the sequence space the segment occupies (payload bytes
// plus one for SYN and FIN, per RFC-793).
func (s *Segment) SeqSpace() uint32 {
	n := uint32(len(s.Payload))
	if s.Has(FlagSYN) {
		n++
	}
	if s.Has(FlagFIN) {
		n++
	}
	return n
}

// FlagNames renders the set flags, e.g. "SYN|ACK".
func (s *Segment) FlagNames() string {
	var names []string
	for _, f := range []struct {
		bit  uint8
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagRST, "RST"}, {FlagPSH, "PSH"},
	} {
		if s.Flags&f.bit != 0 {
			names = append(names, f.name)
		}
	}
	if len(names) == 0 {
		return "NONE"
	}
	return strings.Join(names, "|")
}

// Type classifies the segment the way the PFI stub reports it: SYN,
// SYN-ACK, RST, FIN, DATA (payload present), or ACK (bare acknowledgment).
func (s *Segment) Type() string {
	switch {
	case s.Has(FlagSYN | FlagACK):
		return "SYN-ACK"
	case s.Has(FlagSYN):
		return "SYN"
	case s.Has(FlagRST):
		return "RST"
	case s.Has(FlagFIN):
		return "FIN"
	case len(s.Payload) > 0:
		return "DATA"
	default:
		return "ACK"
	}
}

// String renders a tcpdump-flavoured summary.
func (s *Segment) String() string {
	return fmt.Sprintf("%d>%d %s seq=%d ack=%d win=%d len=%d",
		s.SrcPort, s.DstPort, s.FlagNames(), s.Seq, s.Ack, s.Window, len(s.Payload))
}

// Encode serializes the segment into a stack message.
func (s *Segment) Encode() *message.Message {
	w := message.NewWriter(HeaderLen + len(s.Payload))
	w.U16(s.SrcPort).U16(s.DstPort).U32(s.Seq).U32(s.Ack).U8(s.Flags).U16(s.Window)
	w.Bytes(s.Payload)
	return message.New(w.Done())
}

// Decode parses a segment from a stack message without consuming it.
func Decode(m *message.Message) (*Segment, error) {
	raw := m.Bytes()
	if len(raw) < HeaderLen {
		return nil, fmt.Errorf("tcp: segment too short: %d bytes", len(raw))
	}
	r := message.NewReader(raw)
	seg := &Segment{
		SrcPort: r.U16(),
		DstPort: r.U16(),
		Seq:     r.U32(),
		Ack:     r.U32(),
		Flags:   r.U8(),
		Window:  r.U16(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n := r.Remaining(); n > 0 {
		seg.Payload = append([]byte(nil), r.Take(n)...)
	}
	return seg, nil
}

// Fields renders the header as the string map a PFI recognition stub
// exposes to filter scripts.
func (s *Segment) Fields() map[string]string {
	return map[string]string{
		"srcport": strconv.Itoa(int(s.SrcPort)),
		"dstport": strconv.Itoa(int(s.DstPort)),
		"seq":     strconv.FormatUint(uint64(s.Seq), 10),
		"ack":     strconv.FormatUint(uint64(s.Ack), 10),
		"flags":   s.FlagNames(),
		"win":     strconv.Itoa(int(s.Window)),
		"len":     strconv.Itoa(len(s.Payload)),
	}
}

// seqLess reports a < b in 32-bit sequence arithmetic.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in 32-bit sequence arithmetic.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
