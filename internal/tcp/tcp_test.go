package tcp_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pfi/internal/core"
	"pfi/internal/netsim"
	"pfi/internal/stack"
	"pfi/internal/tcp"
	"pfi/internal/trace"
)

// endpoint is one machine: a TCP layer with a PFI layer spliced below it,
// attached to a netsim node.
type endpoint struct {
	node *netsim.Node
	tcp  *tcp.Layer
	pfi  *core.Layer
	log  *trace.Log
}

// pair is the standard two-machine rig (like the paper's vendor machine
// talking to the x-Kernel machine).
type pair struct {
	w    *netsim.World
	a, b *endpoint
}

func newEndpoint(t *testing.T, w *netsim.World, name string, prof tcp.Profile) *endpoint {
	t.Helper()
	node := w.MustAddNode(name)
	log := trace.NewLog()
	tl, err := tcp.NewLayer(node.Env(), prof, tcp.WithTrace(log))
	if err != nil {
		t.Fatal(err)
	}
	pl := core.NewLayer(node.Env(), core.WithStub(tcp.PFIStub{}), core.WithTrace(log))
	s := stack.New(node.Env(), tl, pl)
	node.SetStack(s)
	return &endpoint{node: node, tcp: tl, pfi: pl, log: log}
}

func newPair(t *testing.T, profA, profB tcp.Profile) *pair {
	t.Helper()
	w := netsim.NewWorld(7)
	p := &pair{w: w}
	p.a = newEndpoint(t, w, "a", profA)
	p.b = newEndpoint(t, w, "b", profB)
	if err := w.Connect("a", "b", netsim.LinkConfig{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	return p
}

// dial opens a connection from a to b:port and runs until established.
func (p *pair) dial(t *testing.T, port uint16, accept func(*tcp.Conn)) *tcp.Conn {
	t.Helper()
	if accept == nil {
		accept = func(*tcp.Conn) {}
	}
	if err := p.b.tcp.Listen(port, accept); err != nil {
		t.Fatal(err)
	}
	c, err := p.a.tcp.Connect("b", port)
	if err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(time.Second)
	if c.State() != tcp.StateEstablished {
		t.Fatalf("client state %v after handshake, want ESTABLISHED", c.State())
	}
	return c
}

func TestHandshake(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var serverConn *tcp.Conn
	c := p.dial(t, 80, func(sc *tcp.Conn) { serverConn = sc })
	if serverConn == nil {
		t.Fatal("accept callback never ran")
	}
	if serverConn.State() != tcp.StateEstablished {
		t.Fatalf("server state %v", serverConn.State())
	}
	if c.RemoteNode() != "b" || serverConn.RemoteNode() != "a" {
		t.Fatal("peer naming wrong")
	}
}

func TestDataTransfer(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var got bytes.Buffer
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		sc.OnData(func(d []byte) { got.Write(d) })
	})
	want := strings.Repeat("hello, tcp! ", 100) // several segments
	if err := c.Send([]byte(want)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(10 * time.Second)
	if got.String() != want {
		t.Fatalf("received %d bytes, want %d, content match=%v",
			got.Len(), len(want), got.String() == want)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	p := newPair(t, tcp.AIX323(), tcp.NeXTMach())
	var aGot, bGot bytes.Buffer
	var server *tcp.Conn
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		server = sc
		sc.OnData(func(d []byte) { bGot.Write(d) })
	})
	c.OnData(func(d []byte) { aGot.Write(d) })
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(time.Second)
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(time.Second)
	if bGot.String() != "ping" || aGot.String() != "pong" {
		t.Fatalf("b got %q, a got %q", bGot.String(), aGot.String())
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var got bytes.Buffer
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		sc.OnData(func(d []byte) { got.Write(d) })
	})
	// Drop the first two DATA segments at the sender's wire.
	if err := p.a.pfi.SetSendScript(`
		if {[msg_type cur_msg] eq "DATA"} {
			if {![info exists ndropped]} { set ndropped 0 }
			if {$ndropped < 2} { incr ndropped; xDrop cur_msg }
		}
	`); err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("x", 2000)
	if err := c.Send([]byte(want)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(60 * time.Second)
	if got.String() != want {
		t.Fatalf("received %d/%d bytes after loss", got.Len(), len(want))
	}
	if len(p.a.log.Filter("a", "retransmit", "")) == 0 {
		t.Fatal("no retransmissions logged")
	}
}

func TestBSDRetransmissionScheduleAndReset(t *testing.T) {
	// Experiment 1's shape for the BSD stacks: 12 retransmissions with
	// exponential backoff to a 64 s plateau, then a RST.
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var closed string
	c := p.dial(t, 80, nil)
	c.OnClose(func(reason string) { closed = reason })
	// b drops everything from now on (receive filter drop-all).
	if err := p.b.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(20 * 64 * time.Second)
	if c.State() != tcp.StateClosed {
		t.Fatalf("connection still %v", c.State())
	}
	if !strings.Contains(closed, "retransmission") {
		t.Fatalf("close reason %q", closed)
	}
	rtx := p.a.log.Times("a", "retransmit", "DATA")
	if len(rtx) != 12 {
		t.Fatalf("retransmissions = %d, want 12", len(rtx))
	}
	r := trace.AnalyzeBackoff(append(p.a.log.Times("a", "retransmit", "DATA")[:0:0],
		rtx...), 0.25)
	if !r.PlateauReached || r.Plateau < 50*time.Second || r.Plateau > 70*time.Second {
		t.Fatalf("plateau %v reached=%v, want ~64 s", r.Plateau, r.PlateauReached)
	}
	// A reset must have been sent.
	if len(p.a.log.Filter("a", "reset", "")) != 1 {
		t.Fatal("no RST on timeout")
	}
}

func TestSolarisScheduleGlobalCounterNoReset(t *testing.T) {
	// Experiment 1's Solaris shape: 9 retransmissions from a ~330 ms
	// floor, abrupt close, no RST.
	p := newPair(t, tcp.Solaris23(), tcp.XKernel())
	c := p.dial(t, 80, nil)
	if err := p.b.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(30 * 64 * time.Second)
	if c.State() != tcp.StateClosed {
		t.Fatalf("connection still %v", c.State())
	}
	rtx := p.a.log.Times("a", "retransmit", "DATA")
	if len(rtx) != 9 {
		t.Fatalf("retransmissions = %d, want 9", len(rtx))
	}
	if len(p.a.log.Filter("a", "reset", "")) != 0 {
		t.Fatal("Solaris sent a RST on timeout; the paper observed none")
	}
	// First retransmission near the 330 ms floor.
	gaps := trace.Intervals(rtx)
	if len(gaps) > 0 && (gaps[0] < 300*time.Millisecond || gaps[0] > 900*time.Millisecond) {
		t.Fatalf("first backoff gap %v, want near 330-660 ms", gaps[0])
	}
}

func TestOutOfOrderQueueing(t *testing.T) {
	// Experiment 5: delay the first segment so the second arrives first;
	// the receiver must queue it and ack both once the gap fills.
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var got bytes.Buffer
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		sc.OnData(func(d []byte) { got.Write(d) })
	})
	// Delay the first transmission of the first segment; drop every
	// retransmission so only the delayed original fills the gap (the
	// paper's "any retransmissions of the second segment were dropped",
	// applied to both segments for a clean wire).
	if err := p.a.pfi.SetSendScript(`
		if {[msg_type cur_msg] eq "DATA"} {
			set seq [msg_field cur_msg seq]
			if {[info exists seen_$seq]} {
				xDrop cur_msg
			} else {
				set seen_$seq 1
				if {![info exists delayed]} {
					set delayed 1
					xDelay cur_msg 3000
				}
			}
		}
	`); err != nil {
		t.Fatal(err)
	}
	first := strings.Repeat("A", 512)
	second := strings.Repeat("B", 512)
	if err := c.Send([]byte(first + second)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(2 * time.Second)
	if got.Len() != 0 {
		t.Fatalf("receiver delivered %d bytes before the gap filled", got.Len())
	}
	p.w.RunFor(30 * time.Second)
	if got.String() != first+second {
		t.Fatalf("delivered %d bytes, in-order=%v", got.Len(), got.String() == first+second)
	}
}

func TestKeepAliveBSDFormatAndDropSchedule(t *testing.T) {
	// Experiment 3: SunOS probes at ~7200 s; when probes are dropped they
	// retransmit 8 times at 75 s, then RST. SunOS probes carry 1 garbage
	// byte at SEG.SEQ = SND.NXT-1.
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	c := p.dial(t, 80, nil)
	var closed string
	c.OnClose(func(r string) { closed = r })
	c.SetKeepAlive(true)
	if err := p.b.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(4 * 3600 * time.Second)
	kas := p.a.log.Times("a", "keepalive", "")
	if len(kas) != 9 { // initial + 8 retransmissions
		t.Fatalf("keepalive probes = %d, want 9", len(kas))
	}
	if first := time.Duration(kas[0]); first < 7200*time.Second || first > 7260*time.Second {
		t.Fatalf("first keepalive at %v, want ~7200 s", first)
	}
	gaps := trace.Intervals(kas)
	for _, g := range gaps {
		if g != 75*time.Second {
			t.Fatalf("probe gap %v, want fixed 75 s", g)
		}
	}
	if closed == "" || !strings.Contains(closed, "keep-alive") {
		t.Fatalf("close reason %q", closed)
	}
	if len(p.a.log.Filter("a", "reset", "")) != 1 {
		t.Fatal("no RST after keep-alive failure")
	}
	// Probe format: one garbage byte.
	entries := p.a.log.Filter("a", "keepalive", "")
	if !strings.Contains(entries[0].Note, "len=1") {
		t.Fatalf("SunOS keepalive note %q, want len=1 garbage byte", entries[0].Note)
	}
}

func TestKeepAliveAnsweredKeepsConnection(t *testing.T) {
	// Variation: probes ACKed; connection stays up and probes continue at
	// the idle interval indefinitely.
	p := newPair(t, tcp.AIX323(), tcp.XKernel())
	c := p.dial(t, 80, nil)
	c.SetKeepAlive(true)
	p.w.RunFor(8 * 7200 * time.Second) // 16 hours
	if c.State() != tcp.StateEstablished {
		t.Fatalf("connection %v, want still ESTABLISHED", c.State())
	}
	kas := p.a.log.Times("a", "keepalive", "")
	if len(kas) < 7 {
		t.Fatalf("keepalives sent = %d, want ~8 over 16 h", len(kas))
	}
	gaps := trace.Intervals(kas)
	for _, g := range gaps {
		if g < 7200*time.Second || g > 7300*time.Second {
			t.Fatalf("answered keepalive gap %v, want ~7200 s", g)
		}
	}
	// AIX probes carry no garbage byte.
	entries := p.a.log.Filter("a", "keepalive", "")
	if !strings.Contains(entries[0].Note, "len=0") {
		t.Fatalf("AIX keepalive note %q, want len=0", entries[0].Note)
	}
}

func TestKeepAliveSolarisViolatesSpecThreshold(t *testing.T) {
	p := newPair(t, tcp.Solaris23(), tcp.XKernel())
	c := p.dial(t, 80, nil)
	c.SetKeepAlive(true)
	p.w.RunFor(7100 * time.Second)
	kas := p.a.log.Times("a", "keepalive", "")
	if len(kas) != 1 {
		t.Fatalf("keepalives by 7100 s = %d, want 1 (Solaris fires at 6752 s, violating the 7200 s spec minimum)", len(kas))
	}
	if at := time.Duration(kas[0]); at < 6752*time.Second || at > 6800*time.Second {
		t.Fatalf("first Solaris keepalive at %v, want ~6752 s", at)
	}
}

func TestZeroWindowProbing(t *testing.T) {
	// Experiment 4: the receiver never consumes, so the window closes; the
	// sender probes at the profile's capped interval; probes elicit ACKs
	// and data flow resumes when the app finally consumes.
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var server *tcp.Conn
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		server = sc
		sc.SetAutoConsume(false)
	})
	payload := strings.Repeat("z", 6000) // exceeds the 4096-byte buffer
	if err := c.Send([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(600 * time.Second)
	if server.RecvBuffered() != 4096 {
		t.Fatalf("receiver buffered %d, want full 4096", server.RecvBuffered())
	}
	zwps := p.a.log.Times("a", "zwp", "")
	if len(zwps) < 5 {
		t.Fatalf("zero-window probes = %d, want a steady stream", len(zwps))
	}
	gaps := trace.Intervals(zwps)
	if last := gaps[len(gaps)-1]; last != 60*time.Second {
		t.Fatalf("steady-state probe gap %v, want 60 s cap", last)
	}
	// Now the app consumes; the window reopens and the rest arrives.
	server.Consume(4096)
	p.w.RunFor(120 * time.Second)
	if server.RecvBuffered() != len(payload)-4096 {
		t.Fatalf("after consume, buffered %d, want %d", server.RecvBuffered(), len(payload)-4096)
	}
}

func TestZeroWindowProbesForeverWhenUnanswered(t *testing.T) {
	// Experiment 4 variation: drop everything once the window closes; all
	// stacks kept probing "indefinitely" (confirmed by a two-day unplug).
	p := newPair(t, tcp.Solaris23(), tcp.XKernel())
	var server *tcp.Conn
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		server = sc
		sc.SetAutoConsume(false)
	})
	if err := c.Send([]byte(strings.Repeat("z", 6000))); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(300 * time.Second) // window now surely zero
	_ = server
	if err := p.b.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	before := len(p.a.log.Times("a", "zwp", ""))
	p.w.RunFor(48 * 3600 * time.Second) // two days
	zwps := p.a.log.Times("a", "zwp", "")
	if len(zwps)-before < 2000 { // ~3086 at 56 s intervals
		t.Fatalf("probes during 2-day blackout = %d, want thousands", len(zwps)-before)
	}
	if c.State() != tcp.StateEstablished {
		t.Fatalf("prober gave up: state %v", c.State())
	}
	gaps := trace.Intervals(zwps[before:])
	if last := gaps[len(gaps)-1]; last != 56*time.Second {
		t.Fatalf("Solaris probe gap %v, want 56 s cap", last)
	}
}

func TestOrderlyClose(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var server *tcp.Conn
	var serverClosed, clientClosed string
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		server = sc
		sc.OnClose(func(r string) { serverClosed = r })
	})
	c.OnClose(func(r string) { clientClosed = r })
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(time.Second)
	if server.State() != tcp.StateCloseWait {
		t.Fatalf("server %v, want CLOSE-WAIT", server.State())
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(2 * time.Second)
	if serverClosed == "" {
		t.Fatal("server never closed")
	}
	p.w.RunFor(120 * time.Second) // TIME-WAIT expiry
	if c.State() != tcp.StateClosed || clientClosed == "" {
		t.Fatalf("client %v closed=%q after TIME-WAIT", c.State(), clientClosed)
	}
}

func TestRSTToClosedPort(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	c, err := p.a.tcp.Connect("b", 9999) // nobody listening
	if err != nil {
		t.Fatal(err)
	}
	var closed string
	c.OnClose(func(r string) { closed = r })
	p.w.RunFor(time.Second)
	if c.State() != tcp.StateClosed || !strings.Contains(closed, "reset") {
		t.Fatalf("state %v closed %q, want reset by peer", c.State(), closed)
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var server *tcp.Conn
	var serverClosed string
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		server = sc
		sc.OnClose(func(r string) { serverClosed = r })
	})
	c.Abort()
	p.w.RunFor(time.Second)
	if server.State() != tcp.StateClosed || !strings.Contains(serverClosed, "reset") {
		t.Fatalf("server %v closed %q", server.State(), serverClosed)
	}
}

func TestDuplicateSegmentsIgnoredByReceiver(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var got bytes.Buffer
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		sc.OnData(func(d []byte) { got.Write(d) })
	})
	if err := p.a.pfi.SetSendScript(`
		if {[msg_type cur_msg] eq "DATA"} { xDuplicate cur_msg 2 5 }
	`); err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("q", 1500)
	if err := c.Send([]byte(want)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(30 * time.Second)
	if got.String() != want {
		t.Fatalf("duplicates corrupted the stream: got %d bytes (want %d)", got.Len(), len(want))
	}
}

func TestCorruptedSegmentDoesNotCrashReceiver(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var got bytes.Buffer
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		sc.OnData(func(d []byte) { got.Write(d) })
	})
	// Flip the sequence number of one DATA segment (byzantine corruption).
	if err := p.a.pfi.SetSendScript(`
		if {[msg_type cur_msg] eq "DATA" && ![info exists hit]} {
			set hit 1
			msg_set_byte cur_msg 4 255
		}
	`); err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("r", 1024)
	if err := c.Send([]byte(want)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(120 * time.Second)
	if got.String() != want {
		t.Fatalf("stream not recovered after corruption: %d/%d bytes", got.Len(), len(want))
	}
}

func TestSpuriousACKInjectionHarmless(t *testing.T) {
	// The paper's example of stateless generation: a spurious ACK needs no
	// protocol-state update and must not disturb the connection.
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	var got bytes.Buffer
	c := p.dial(t, 80, func(sc *tcp.Conn) {
		sc.OnData(func(d []byte) { got.Write(d) })
	})
	if err := p.a.pfi.SetReceiveScript(`
		if {[msg_type cur_msg] eq "ACK"} {
			xInject ACK [list srcport [msg_field cur_msg srcport] dstport [msg_field cur_msg dstport] seq [msg_field cur_msg seq] ack [msg_field cur_msg ack] win [msg_field cur_msg win]] up
		}
	`); err != nil {
		t.Fatal(err)
	}
	want := strings.Repeat("s", 2048)
	if err := c.Send([]byte(want)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(30 * time.Second)
	if got.String() != want {
		t.Fatalf("spurious ACKs disturbed transfer: %d/%d", got.Len(), len(want))
	}
}

func TestConnectTimeoutWhenPeerSilent(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	// No listener and all receive traffic dropped at b, so not even a RST
	// comes back: the SYN must retransmit and eventually give up.
	if err := p.b.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	c, err := p.a.tcp.Connect("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	var closed string
	c.OnClose(func(r string) { closed = r })
	p.w.RunFor(4000 * time.Second)
	if c.State() != tcp.StateClosed || closed == "" {
		t.Fatalf("SYN retries never gave up: %v %q", c.State(), closed)
	}
}

func TestSendOnClosedConnectionFails(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	c := p.dial(t, 80, nil)
	c.Abort()
	p.w.RunFor(time.Second)
	if err := c.Send([]byte("late")); err == nil {
		t.Fatal("Send on closed connection succeeded")
	}
}

func TestListenTwiceFails(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	if err := p.b.tcp.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.b.tcp.Listen(80, nil); err == nil {
		t.Fatal("double listen succeeded")
	}
}

func TestJacobsonAdaptsToACKDelay(t *testing.T) {
	// Experiment 2's core claim: with a 3 s ACK delay, a Jacobson stack's
	// first retransmission after the blackout begins happens well beyond
	// 3 s, because the RTO adapted.
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	c := p.dial(t, 80, nil)
	if err := p.b.pfi.SetSendScript(`
		if {[msg_type cur_msg] eq "ACK"} { xDelay cur_msg 3000 }
	`); err != nil {
		t.Fatal(err)
	}
	// Stream segments one at a time so every ACK matters.
	for i := 0; i < 30; i++ {
		if err := c.Send([]byte(strings.Repeat("d", 512))); err != nil {
			t.Fatal(err)
		}
		p.w.RunFor(4 * time.Second)
	}
	// Blackout.
	if err := p.b.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte(strings.Repeat("e", 512))); err != nil {
		t.Fatal(err)
	}
	sendAt := p.w.Now()
	p.w.RunFor(300 * time.Second)
	rtx := p.a.log.Times("a", "retransmit", "DATA")
	var firstAfter time.Duration
	for _, at := range rtx {
		if at > sendAt {
			firstAfter = at.Sub(sendAt)
			break
		}
	}
	if firstAfter < 3*time.Second {
		t.Fatalf("Jacobson stack retransmitted after %v, want > 3 s (adapted RTO)", firstAfter)
	}
}

func TestSolarisDoesNotAdaptToACKDelay(t *testing.T) {
	p := newPair(t, tcp.Solaris23(), tcp.XKernel())
	c := p.dial(t, 80, nil)
	if err := p.b.pfi.SetSendScript(`
		if {[msg_type cur_msg] eq "ACK"} { xDelay cur_msg 3000 }
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Send([]byte(strings.Repeat("d", 512))); err != nil {
			t.Fatal(err)
		}
		p.w.RunFor(4 * time.Second)
	}
	if err := p.b.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte(strings.Repeat("e", 512))); err != nil {
		t.Fatal(err)
	}
	sendAt := p.w.Now()
	p.w.RunFor(300 * time.Second)
	rtx := p.a.log.Times("a", "retransmit", "DATA")
	var firstAfter time.Duration
	for _, at := range rtx {
		if at > sendAt {
			firstAfter = at.Sub(sendAt)
			break
		}
	}
	if firstAfter == 0 || firstAfter > 3*time.Second {
		t.Fatalf("Solaris first retransmission after %v, want under 3 s (unadapted RTO)", firstAfter)
	}
}

func TestAccessorsAndPipelining(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	established := false
	var c *tcp.Conn
	var err error
	if err = p.b.tcp.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	c, err = p.a.tcp.Connect("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	c.OnEstablished(func() { established = true })
	p.w.RunFor(time.Second)
	if !established {
		t.Fatal("OnEstablished never fired")
	}
	if c.LocalPort() == 0 || c.RemotePort() != 80 {
		t.Errorf("ports %d -> %d", c.LocalPort(), c.RemotePort())
	}
	if c.CloseReason() != "" {
		t.Errorf("open connection has close reason %q", c.CloseReason())
	}
	if p.a.tcp.Conns() != 1 || p.b.tcp.Conns() != 1 {
		t.Errorf("conns a=%d b=%d", p.a.tcp.Conns(), p.b.tcp.Conns())
	}
	if p.a.tcp.Profile().Name != "SunOS 4.1.3" {
		t.Errorf("profile %q", p.a.tcp.Profile().Name)
	}
	if p.a.tcp.Name() != "tcp" {
		t.Errorf("layer name %q", p.a.tcp.Name())
	}
	if (tcp.PFIStub{}).Protocol() != "tcp" {
		t.Error("stub protocol")
	}

	// The paper's Table 1 commentary: with window available, the sender
	// transmits the NEXT segment in sequence space soon after the first —
	// both in flight at once ("eliciting an ACK for both segments").
	if err := p.b.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(make([]byte, 2*512)); err != nil { // two MSS segments
		t.Fatal(err)
	}
	if got := c.UnackedSegments(); got != 2 {
		t.Fatalf("in-flight segments = %d, want both pipelined immediately", got)
	}
	// Only the OLDEST is retransmitted.
	p.w.RunFor(10 * time.Second)
	rtx := p.a.log.Filter("a", "retransmit", "DATA")
	if len(rtx) == 0 {
		t.Fatal("no retransmissions")
	}
	firstSeq := rtx[0].Seq
	for _, e := range rtx {
		if e.Seq != firstSeq {
			t.Fatalf("retransmitted seq %d, want only the oldest %d", e.Seq, firstSeq)
		}
	}
}

func TestHandleDownRejected(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	if err := p.a.tcp.HandleDown(nil); err == nil {
		t.Fatal("raw HandleDown accepted")
	}
}

func TestSetKeepAliveOffCancelsProbing(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	c := p.dial(t, 80, nil)
	c.SetKeepAlive(true)
	c.SetKeepAlive(false)
	p.w.RunFor(3 * 7200 * time.Second)
	if kas := p.a.log.Times("a", "keepalive", ""); len(kas) != 0 {
		t.Fatalf("keepalive disabled but %d probes sent", len(kas))
	}
}

func TestCloseFromSynSentAborts(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	// Nothing listening and inbound RSTs suppressed: stuck in SYN-SENT.
	if err := p.a.pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		t.Fatal(err)
	}
	c, err := p.a.tcp.Connect("b", 4242)
	if err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(100 * time.Millisecond)
	if c.State() != tcp.StateSynSent {
		t.Fatalf("state %v", c.State())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.State() != tcp.StateClosed {
		t.Fatalf("close from SYN-SENT left state %v", c.State())
	}
	// Closing again is a no-op.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSynAckRetransmittedWhenHandshakeACKLost(t *testing.T) {
	p := newPair(t, tcp.SunOS413(), tcp.XKernel())
	// Drop the client's final handshake ACK (first bare ACK from a).
	if err := p.a.pfi.SetSendScript(`
		if {[msg_type cur_msg] eq "ACK" && ![info exists dropped]} {
			set dropped 1
			xDrop cur_msg
		}
	`); err != nil {
		t.Fatal(err)
	}
	var server *tcp.Conn
	if err := p.b.tcp.Listen(80, func(sc *tcp.Conn) { server = sc }); err != nil {
		t.Fatal(err)
	}
	c, err := p.a.tcp.Connect("b", 80)
	if err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(time.Minute)
	// The server retransmits its SYN-ACK; a duplicate SYN-ACK reaching the
	// established client elicits a fresh ACK, completing the handshake.
	if server == nil || server.State() != tcp.StateEstablished {
		st := tcp.StateClosed
		if server != nil {
			st = server.State()
		}
		t.Fatalf("server state %v after lost handshake ACK", st)
	}
	if c.State() != tcp.StateEstablished {
		t.Fatalf("client state %v", c.State())
	}
}

func TestDelayedACKCoalesces(t *testing.T) {
	// The vendor profiles use RFC-1122 delayed ACKs: a single in-order
	// segment is acked only after the 200 ms delack timer, and a pair of
	// segments elicits one immediate ACK — so two segments produce fewer
	// ACKs than two.
	p := newPair(t, tcp.XKernel(), tcp.SunOS413()) // SunOS receives
	c := p.dial(t, 80, nil)
	// Observe ACKs on the wire with the vendor-side PFI send filter.
	if err := p.b.pfi.SetSendScript(`
		if {[msg_type cur_msg] eq "ACK"} {
			if {![info exists acks]} { set acks 0 }
			incr acks
			peer_set ack_count $acks
		}
	`); err != nil {
		t.Fatal(err)
	}
	// One lone segment: the ACK must wait for the delack timeout.
	before := p.w.Now()
	if err := c.Send(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(50 * time.Millisecond)
	if v, _ := p.b.pfi.ReceiveFilter().Interp().Global("ack_count"); v != "" {
		t.Fatalf("ACK sent after %v, want it withheld ~200 ms", p.w.Now().Sub(before))
	}
	p.w.RunFor(300 * time.Millisecond)
	if v, _ := p.b.pfi.ReceiveFilter().Interp().Global("ack_count"); v != "1" {
		t.Fatalf("ack_count after delack timeout = %q, want 1", v)
	}
	// Two back-to-back segments: the second forces an immediate ACK.
	if err := c.Send(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	p.w.RunFor(20 * time.Millisecond)
	if v, _ := p.b.pfi.ReceiveFilter().Interp().Global("ack_count"); v != "2" {
		t.Fatalf("ack_count after segment pair = %q, want 2 (one coalesced ACK)", v)
	}
}

// Property: a TCP stream over a lossy, reordering network still delivers
// the exact byte sequence, in order — the protocol's core guarantee under
// the netsim's random faults.
func TestPropertyStreamIntegrityUnderLoss(t *testing.T) {
	seeds := []int64{1, 7, 42}
	for _, seed := range seeds {
		w := netsim.NewWorld(seed)
		a := newEndpoint(t, w, "a", tcp.SunOS413())
		b := newEndpoint(t, w, "b", tcp.XKernel())
		if err := w.Connect("a", "b", netsim.LinkConfig{
			Latency: time.Millisecond, Jitter: 4 * time.Millisecond, Loss: 0.15,
		}); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := b.tcp.Listen(80, func(sc *tcp.Conn) {
			sc.OnData(func(d []byte) { got.Write(d) })
		}); err != nil {
			t.Fatal(err)
		}
		c, err := a.tcp.Connect("b", 80)
		if err != nil {
			t.Fatal(err)
		}
		w.RunFor(30 * time.Second) // lossy handshake may need retries
		if c.State() != tcp.StateEstablished {
			t.Fatalf("seed %d: handshake failed", seed)
		}
		want := make([]byte, 8000)
		rng := w.Rand()
		for i := range want {
			want[i] = byte(rng.Intn(256))
		}
		if err := c.Send(want); err != nil {
			t.Fatal(err)
		}
		w.RunFor(10 * time.Minute)
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("seed %d: stream corrupted: got %d bytes, want %d (equal=%v)",
				seed, got.Len(), len(want), bytes.Equal(got.Bytes(), want))
		}
	}
}
