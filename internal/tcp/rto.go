package tcp

import "time"

// rtoEstimator computes the retransmission timeout.
//
// With jacobson=true it implements Jacobson's algorithm (SRTT/RTTVAR,
// RTO = SRTT + 4*RTTVAR) with Karn's rule applied by the caller (samples
// from retransmitted segments are never offered). With jacobson=false it
// models the Solaris 2.3 behaviour the paper observed: the estimator
// ignores round-trip measurements, so the timeout stays pinned at the
// profile's floor regardless of network delay ("not nearly as adaptable to
// a sudden slow network as the other implementations").
type rtoEstimator struct {
	jacobson bool
	min, max time.Duration
	initial  time.Duration

	srtt    time.Duration
	rttvar  time.Duration
	sampled bool
}

func newRTOEstimator(p Profile) *rtoEstimator {
	return &rtoEstimator{
		jacobson: p.UseJacobson,
		min:      p.RTOMin,
		max:      p.RTOMax,
		initial:  p.InitialRTO,
	}
}

// sample feeds one round-trip measurement (callers enforce Karn's rule).
func (e *rtoEstimator) sample(rtt time.Duration) {
	if !e.jacobson {
		return
	}
	if !e.sampled {
		// First measurement, per RFC-6298 §2.2 (same as Jacobson '88).
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.sampled = true
		return
	}
	// RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - RTT|; SRTT = 7/8 SRTT + 1/8 RTT.
	diff := e.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (3*e.rttvar + diff) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

// sampleCrude feeds a measurement the way the paper inferred Solaris 2.3
// selects them: timed from the segment's FIRST transmission regardless of
// retransmissions (no Karn exclusion) and adopted without smoothing. The
// resulting timeout is 0.8x the last observed round trip, floored at the
// profile minimum — which reproduces the paper's observation of a first
// retransmission at ~2.4 s under a 3 s ACK delay, barely adapted compared
// to the Jacobson stacks.
func (e *rtoEstimator) sampleCrude(rtt time.Duration) {
	if e.jacobson {
		return
	}
	e.srtt = rtt * 4 / 5
	e.sampled = true
}

// rto returns the base timeout (before backoff) under the profile bounds.
func (e *rtoEstimator) rto() time.Duration {
	if !e.sampled {
		return clampDur(e.initial, e.min, e.max)
	}
	if !e.jacobson {
		return clampDur(e.srtt, e.min, e.max)
	}
	return clampDur(e.srtt+4*e.rttvar, e.min, e.max)
}

// backedOff returns the timeout for the nth consecutive retransmission
// (n=0 is the original timeout), doubling up to the profile cap.
func (e *rtoEstimator) backedOff(n int) time.Duration {
	d := e.rto()
	for i := 0; i < n; i++ {
		d *= 2
		if d >= e.max {
			return e.max
		}
	}
	return clampDur(d, e.min, e.max)
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
