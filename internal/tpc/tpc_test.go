package tpc_test

import (
	"testing"
	"time"

	"pfi/internal/core"
	"pfi/internal/fault"
	"pfi/internal/netsim"
	"pfi/internal/rudp"
	"pfi/internal/stack"
	"pfi/internal/tpc"
)

// rig: one coordinator ("coord") and n participants ("p1".."pn"), each
// with a PFI layer at the rudp/network boundary.
type rig struct {
	w            *netsim.World
	coord        *tpc.Coordinator
	coordPFI     *core.Layer
	participants map[string]*tpc.Participant
	pfis         map[string]*core.Layer
	names        []string
}

func newRig(t *testing.T, n int, opts ...tpc.ParticipantOption) *rig {
	t.Helper()
	r := &rig{
		w:            netsim.NewWorld(5),
		participants: make(map[string]*tpc.Participant),
		pfis:         make(map[string]*core.Layer),
	}
	build := func(name string) (*rudp.Layer, *core.Layer) {
		node := r.w.MustAddNode(name)
		net := rudp.NewLayer(node.Env())
		pfi := core.NewLayer(node.Env(), core.WithStub(tpc.PFIStub{}))
		node.SetStack(stack.New(node.Env(), net, pfi))
		return net, pfi
	}
	cnet, cpfi := build("coord")
	coordNode, _ := r.w.Node("coord")
	r.coord = tpc.NewCoordinator(coordNode.Env(), cnet)
	r.coordPFI = cpfi
	for i := 1; i <= n; i++ {
		name := "p" + string(rune('0'+i))
		pnet, ppfi := build(name)
		node, _ := r.w.Node(name)
		r.participants[name] = tpc.NewParticipant(node.Env(), pnet, opts...)
		r.pfis[name] = ppfi
		r.names = append(r.names, name)
	}
	if err := r.w.ConnectAll(netsim.LinkConfig{Latency: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCommitHappyPath(t *testing.T) {
	r := newRig(t, 3)
	var outcome tpc.TxState
	tx, err := r.coord.Begin(r.names, func(o tpc.TxState) { outcome = o })
	if err != nil {
		t.Fatal(err)
	}
	r.w.RunFor(time.Second)
	if outcome != tpc.StateCommitted {
		t.Fatalf("outcome %v, want COMMITTED", outcome)
	}
	for _, name := range r.names {
		if s := r.participants[name].State(tx); s != tpc.StateCommitted {
			t.Errorf("%s state %v", name, s)
		}
	}
}

func TestOneNoVoteAbortsAll(t *testing.T) {
	r := newRig(t, 3, tpc.WithVote(func(tx uint32) bool { return false }))
	// Everyone votes NO here; a mixed rig follows below.
	tx, err := r.coord.Begin(r.names, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.w.RunFor(time.Second)
	if got := r.coord.Outcome(tx); got != tpc.StateAborted {
		t.Fatalf("outcome %v, want ABORTED", got)
	}
	for _, name := range r.names {
		if s := r.participants[name].State(tx); s != tpc.StateAborted {
			t.Errorf("%s state %v", name, s)
		}
	}
}

func TestMixedVotesAbortUnblocksYesVoters(t *testing.T) {
	// p1 votes NO; p2/p3 vote YES and must be released by the ABORT.
	// The rig is built by hand so each participant can carry its own vote.
	r2 := &rig{
		w:            netsim.NewWorld(6),
		participants: make(map[string]*tpc.Participant),
		pfis:         make(map[string]*core.Layer),
	}
	build := func(name string, vote func(uint32) bool) {
		node := r2.w.MustAddNode(name)
		net := rudp.NewLayer(node.Env())
		pfi := core.NewLayer(node.Env(), core.WithStub(tpc.PFIStub{}))
		node.SetStack(stack.New(node.Env(), net, pfi))
		if name == "coord" {
			r2.coord = tpc.NewCoordinator(node.Env(), net)
			r2.coordPFI = pfi
			return
		}
		var opts []tpc.ParticipantOption
		if vote != nil {
			opts = append(opts, tpc.WithVote(vote))
		}
		r2.participants[name] = tpc.NewParticipant(node.Env(), net, opts...)
		r2.pfis[name] = pfi
		r2.names = append(r2.names, name)
	}
	build("coord", nil)
	build("p1", func(uint32) bool { return false })
	build("p2", nil)
	build("p3", nil)
	if err := r2.w.ConnectAll(netsim.LinkConfig{Latency: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	tx, err := r2.coord.Begin(r2.names, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.w.RunFor(time.Second)
	if got := r2.coord.Outcome(tx); got != tpc.StateAborted {
		t.Fatalf("outcome %v, want ABORTED", got)
	}
	for _, name := range []string{"p2", "p3"} {
		if s := r2.participants[name].State(tx); s != tpc.StateAborted {
			t.Errorf("%s state %v, want released by ABORT", name, s)
		}
	}
}

func TestLostPrepareAbortsByTimeout(t *testing.T) {
	r := newRig(t, 2)
	// p2 never receives its PREPARE.
	if err := r.pfis["p2"].SetReceiveScript(`
		if {[msg_type cur_msg] eq "PREPARE"} { xDrop cur_msg }
	`); err != nil {
		t.Fatal(err)
	}
	tx, err := r.coord.Begin(r.names, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.w.RunFor(time.Minute)
	if got := r.coord.Outcome(tx); got != tpc.StateAborted {
		t.Fatalf("outcome %v, want ABORTED on vote timeout", got)
	}
	if s := r.participants["p1"].State(tx); s != tpc.StateAborted {
		t.Errorf("p1 state %v, want released by ABORT", s)
	}
}

func TestCoordinatorCrashAfterPrepareBlocksParticipants(t *testing.T) {
	// THE experiment: crash the coordinator after its PREPAREs leave but
	// before any outcome does — injected with a process-crash fault plan
	// on the coordinator's PFI layer, scoped to outcome messages.
	r := newRig(t, 3)
	if err := r.coordPFI.SetSendScript(`
		set t [msg_type cur_msg]
		if {$t eq "COMMIT" || $t eq "ABORT"} { xDrop cur_msg }
	`); err != nil {
		t.Fatal(err)
	}
	tx, err := r.coord.Begin(r.names, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.w.RunFor(5 * time.Minute)
	// Every participant voted YES and is now blocked: PREPARED forever.
	for _, name := range r.names {
		if s := r.participants[name].State(tx); s != tpc.StatePrepared {
			t.Errorf("%s state %v, want PREPARED (blocked)", name, s)
		}
		if blocked := r.participants[name].Events().Filter(name, "blocked", ""); len(blocked) < 10 {
			t.Errorf("%s logged %d blocked checks, want a steady stream", name, len(blocked))
		}
	}
	// Clear the fault ("the coordinator recovers"): the outcome is
	// re-delivered when the coordinator re-decides.
	if err := r.coordPFI.SetSendScript(""); err != nil {
		t.Fatal(err)
	}
	r.coord.Recover()
	r.w.RunFor(time.Second)
	for _, name := range r.names {
		if s := r.participants[name].State(tx); s != tpc.StateCommitted {
			t.Errorf("%s state %v after recovery, want COMMITTED", name, s)
		}
	}
}

func TestTrueProcessCrashViaFaultPlan(t *testing.T) {
	// The same blocking window induced with the failure-model library: a
	// process-crash plan on the coordinator activating right after the
	// votes arrive.
	r := newRig(t, 2)
	plan := fault.Plan{Model: fault.ProcessCrash, Start: 50 * time.Millisecond}
	if err := plan.Apply(r.coordPFI); err != nil {
		t.Fatal(err)
	}
	r.coord.Crash() // and halt the process itself at the same instant
	crashedAt := r.w.Now()
	_ = crashedAt
	// Begin fails on a crashed coordinator.
	if _, err := r.coord.Begin(r.names, nil); err == nil {
		t.Fatal("Begin on crashed coordinator succeeded")
	}
	r.coord.Recover()
	tx, err := r.coord.Begin(r.names, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The PFI crash plan starts at +50 ms: PREPAREs (sent now) escape,
	// outcomes (sent after votes arrive at ~+8 ms... still before 50 ms)
	// — run the clock forward so the PREPARE exchange completes, then
	// crash the process for real before it can decide.
	r.coord.Crash()
	r.w.RunFor(time.Minute)
	for _, name := range r.names {
		if s := r.participants[name].State(tx); s != tpc.StatePrepared {
			t.Errorf("%s state %v, want PREPARED (blocked)", name, s)
		}
	}
	// Reboot: the machine comes back with its fault cleared, then the
	// coordinator process recovers. No votes were recorded before the
	// crash, so recovery aborts.
	if err := r.coordPFI.SetSendScript(""); err != nil {
		t.Fatal(err)
	}
	if err := r.coordPFI.SetReceiveScript(""); err != nil {
		t.Fatal(err)
	}
	r.coord.Recover()
	r.w.RunFor(time.Minute)
	for _, name := range r.names {
		s := r.participants[name].State(tx)
		if s != tpc.StateAborted && s != tpc.StateCommitted {
			t.Errorf("%s still %v after recovery", name, s)
		}
	}
}

func TestDuplicatePrepareReVotes(t *testing.T) {
	r := newRig(t, 1)
	// Duplicate every PREPARE on the coordinator's wire.
	if err := r.coordPFI.SetSendScript(`
		if {[msg_type cur_msg] eq "PREPARE"} { xDuplicate cur_msg 1 }
	`); err != nil {
		t.Fatal(err)
	}
	tx, err := r.coord.Begin(r.names, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.w.RunFor(time.Second)
	if got := r.coord.Outcome(tx); got != tpc.StateCommitted {
		t.Fatalf("outcome %v, want COMMITTED despite duplicate PREPAREs", got)
	}
}

func TestMsgRoundTripAndStub(t *testing.T) {
	m := &tpc.Msg{Type: tpc.TypeVoteYes, TxID: 99, From: "p1"}
	got, err := tpc.DecodeMsg(m.Encode())
	if err != nil || got.Type != m.Type || got.TxID != 99 || got.From != "p1" {
		t.Fatalf("round trip %+v, %v", got, err)
	}
	if _, err := tpc.DecodeMsg([]byte{1}); err == nil {
		t.Fatal("short message decoded")
	}
	if _, err := tpc.DecodeMsg([]byte{77, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown type decoded")
	}
	stub := tpc.PFIStub{}
	frame, err := stub.Generate("ABORT", map[string]string{"tx": "7", "from": "evil"})
	if err != nil {
		t.Fatal(err)
	}
	info, err := stub.Recognize(frame)
	if err != nil || info.Type != "ABORT" || info.Field("tx") != "7" {
		t.Fatalf("stub round trip %+v, %v", info, err)
	}
	if _, err := stub.Generate("NOPE", nil); err == nil {
		t.Fatal("unknown generate type accepted")
	}
	if tpc.TypeName(42) != "TYPE(42)" {
		t.Fatal("unknown type name")
	}
	if tpc.StateIdle.String() != "IDLE" || tpc.TxState(42).String() != "TxState(42)" {
		t.Fatal("state names")
	}
}

func TestBeginValidation(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.coord.Begin(nil, nil); err == nil {
		t.Fatal("Begin with no participants succeeded")
	}
}

func TestSpuriousAbortInjection(t *testing.T) {
	// A byzantine fault: as p1's VOTE-YES leaves, the PFI layer injects a
	// forged ABORT upward — it lands after the vote but before the real
	// outcome. The participant obeys (2PC has no authentication), and the
	// forged outcome disagrees with the coordinator's eventual COMMIT: an
	// atomicity violation the tool makes directly observable.
	r := newRig(t, 2)
	if err := r.pfis["p1"].SetSendScript(`
		if {[msg_type cur_msg] eq "VOTE-YES" && ![info exists forged]} {
			set forged 1
			xInject ABORT [list tx [msg_field cur_msg tx] from coord src coord] up
		}
	`); err != nil {
		t.Fatal(err)
	}
	tx, err := r.coord.Begin(r.names, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.w.RunFor(time.Minute)
	s1 := r.participants["p1"].State(tx)
	s2 := r.participants["p2"].State(tx)
	if s1 != tpc.StateAborted {
		t.Fatalf("p1 state %v, want forged ABORT honoured", s1)
	}
	if s2 != tpc.StateCommitted {
		t.Fatalf("p2 state %v, want the coordinator's COMMIT", s2)
	}
	// p1 aborted while p2 committed: the forged message produced the
	// atomicity violation the injection was designed to expose.
}

// Property: agreement (AC1) under random message loss — no two
// participants ever decide different outcomes. Participants that never
// decide (blocked or unreached) do not violate atomicity.
func TestPropertyAgreementUnderLoss(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		w := netsim.NewWorld(seed)
		names := []string{"p1", "p2", "p3"}
		participants := map[string]*tpc.Participant{}
		var coord *tpc.Coordinator
		for _, name := range append([]string{"coord"}, names...) {
			node := w.MustAddNode(name)
			net := rudp.NewLayer(node.Env())
			node.SetStack(stack.New(node.Env(), net))
			if name == "coord" {
				coord = tpc.NewCoordinator(node.Env(), net)
			} else {
				participants[name] = tpc.NewParticipant(node.Env(), net)
			}
		}
		if err := w.ConnectAll(netsim.LinkConfig{Latency: 2 * time.Millisecond, Loss: 0.3}); err != nil {
			t.Fatal(err)
		}
		var txs []uint32
		for i := 0; i < 5; i++ {
			tx, err := coord.Begin(names, nil)
			if err != nil {
				t.Fatal(err)
			}
			txs = append(txs, tx)
			w.RunFor(time.Minute)
		}
		for _, tx := range txs {
			decided := map[tpc.TxState]bool{}
			for _, name := range names {
				s := participants[name].State(tx)
				if s == tpc.StateCommitted || s == tpc.StateAborted {
					decided[s] = true
				}
			}
			if len(decided) > 1 {
				t.Errorf("seed %d tx %d: split decision %v", seed, tx, decided)
			}
			// And any decided participant matches the coordinator.
			if co := coord.Outcome(tx); co != tpc.StateIdle {
				for _, name := range names {
					if s := participants[name].State(tx); (s == tpc.StateCommitted || s == tpc.StateAborted) && s != co {
						t.Errorf("seed %d tx %d: %s decided %v, coordinator %v", seed, tx, name, s, co)
					}
				}
			}
		}
	}
}
