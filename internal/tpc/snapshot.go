package tpc

import "pfi/internal/simtime"

// Snapshot support (see internal/snapshot) for both 2PC roles. Transaction
// runs are retained by pointer (timer closures capture transaction ids and
// re-check state, so restored state re-routes them correctly); votes and
// decisions are saved by value.

// participantState is a participant's mutable state.
type participantState struct {
	states map[uint32]TxState
	timers map[uint32]*simtime.Event
	logLen int
}

// SnapshotState captures the participant for the snapshot registry.
func (p *Participant) SnapshotState() any {
	st := &participantState{
		states: make(map[uint32]TxState, len(p.states)),
		timers: make(map[uint32]*simtime.Event, len(p.timers)),
		logLen: p.log.Len(),
	}
	for k, v := range p.states {
		st.states[k] = v
	}
	for k, v := range p.timers {
		st.timers[k] = v
	}
	return st
}

// RestoreState rewinds the participant.
func (p *Participant) RestoreState(state any) {
	st := state.(*participantState)
	p.states = make(map[uint32]TxState, len(st.states))
	for k, v := range st.states {
		p.states[k] = v
	}
	p.timers = make(map[uint32]*simtime.Event, len(st.timers))
	for k, v := range st.timers {
		p.timers[k] = v
	}
	p.log.RestoreState(st.logLen)
}

// txSaved is one transaction run's mutable state.
type txSaved struct {
	run     *txRun
	votes   map[string]bool
	decided bool
	outcome TxState
	timer   *simtime.Event
}

// coordinatorState is a coordinator's mutable state.
type coordinatorState struct {
	crash  bool
	nextTx uint32
	open   map[uint32]txSaved
	logLen int
}

// SnapshotState captures the coordinator for the snapshot registry.
func (c *Coordinator) SnapshotState() any {
	st := &coordinatorState{
		crash:  c.crash,
		nextTx: c.nextTx,
		open:   make(map[uint32]txSaved, len(c.open)),
		logLen: c.log.Len(),
	}
	for tx, run := range c.open {
		votes := make(map[string]bool, len(run.votes))
		for k, v := range run.votes {
			votes[k] = v
		}
		st.open[tx] = txSaved{run: run, votes: votes, decided: run.decided,
			outcome: run.outcome, timer: run.timer}
	}
	return st
}

// RestoreState rewinds the coordinator.
func (c *Coordinator) RestoreState(state any) {
	st := state.(*coordinatorState)
	c.crash = st.crash
	c.nextTx = st.nextTx
	c.open = make(map[uint32]*txRun, len(st.open))
	for tx, sv := range st.open {
		sv.run.votes = make(map[string]bool, len(sv.votes))
		for k, v := range sv.votes {
			sv.run.votes[k] = v
		}
		sv.run.decided = sv.decided
		sv.run.outcome = sv.outcome
		sv.run.timer = sv.timer
		c.open[tx] = sv.run
	}
	c.log.RestoreState(st.logLen)
}
