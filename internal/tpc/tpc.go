// Package tpc implements two-phase commit (2PC), a further "prototype
// distributed protocol" in the spirit of the paper's future-work item
// (iii): experimental studies of other protocols with the PFI tool.
//
// The interesting property the fault injector exposes is 2PC's classic
// BLOCKING WINDOW: a participant that has voted YES may neither commit nor
// abort on its own — if the coordinator crashes between collecting votes
// and announcing the outcome, prepared participants stay blocked (holding
// their locks) until the coordinator returns. A crash injected anywhere
// else is harmless. The tests drive both cases through PFI filter scripts
// without touching this package's code.
package tpc

import (
	"fmt"
	"time"

	"pfi/internal/core"
	"pfi/internal/message"
	"pfi/internal/rudp"
	"pfi/internal/simtime"
	"pfi/internal/stack"
	"pfi/internal/trace"
)

// Message types.
const (
	TypePrepare = 1
	TypeVoteYes = 2
	TypeVoteNo  = 3
	TypeCommit  = 4
	TypeAbort   = 5
)

var typeNames = map[uint8]string{
	TypePrepare: "PREPARE",
	TypeVoteYes: "VOTE-YES",
	TypeVoteNo:  "VOTE-NO",
	TypeCommit:  "COMMIT",
	TypeAbort:   "ABORT",
}

// TypeName renders a message type.
func TypeName(t uint8) string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("TYPE(%d)", t)
}

// Msg is one 2PC message.
type Msg struct {
	Type uint8
	TxID uint32
	From string
}

// Encode serializes the message.
func (m *Msg) Encode() []byte {
	w := message.NewWriter(8 + len(m.From))
	w.U8(m.Type).U32(m.TxID).U8(uint8(len(m.From))).Bytes([]byte(m.From))
	return w.Done()
}

// DecodeMsg parses a 2PC message.
func DecodeMsg(raw []byte) (*Msg, error) {
	r := message.NewReader(raw)
	m := &Msg{Type: r.U8(), TxID: r.U32()}
	n := int(r.U8())
	b := r.Take(n)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("tpc: short message: %w", err)
	}
	m.From = string(b)
	if _, ok := typeNames[m.Type]; !ok {
		return nil, fmt.Errorf("tpc: unknown type %d", m.Type)
	}
	return m, nil
}

// TxState is a participant's (or coordinator's) view of a transaction.
type TxState int

// Transaction states.
const (
	StateIdle TxState = iota + 1
	StatePreparing
	StatePrepared // voted YES, awaiting outcome — the blocking state
	StateCommitted
	StateAborted
)

var stateNames = map[TxState]string{
	StateIdle:      "IDLE",
	StatePreparing: "PREPARING",
	StatePrepared:  "PREPARED",
	StateCommitted: "COMMITTED",
	StateAborted:   "ABORTED",
}

// String implements fmt.Stringer.
func (s TxState) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("TxState(%d)", int(s))
}

// Participant is a 2PC resource manager.
type Participant struct {
	env  *stack.Env
	net  *rudp.Layer
	id   string
	log  *trace.Log
	vote func(tx uint32) bool // nil = always YES
	// prepareTimeout lets a participant that has NOT yet voted abort a
	// transaction whose coordinator went silent. After VOTE-YES it no
	// longer applies: that is the blocking window.
	prepareTimeout time.Duration

	states map[uint32]TxState
	timers map[uint32]*simtime.Event
}

// ParticipantOption configures a participant.
type ParticipantOption func(*Participant)

// WithVote installs the local commit/abort decision function.
func WithVote(fn func(tx uint32) bool) ParticipantOption {
	return func(p *Participant) { p.vote = fn }
}

// WithPrepareTimeout overrides the pre-vote abort timeout (default 5 s).
func WithPrepareTimeout(d time.Duration) ParticipantOption {
	return func(p *Participant) { p.prepareTimeout = d }
}

// WithParticipantTrace mirrors events into lg.
func WithParticipantTrace(lg *trace.Log) ParticipantOption {
	return func(p *Participant) { p.log = lg }
}

// NewParticipant builds a participant bound to a reliable-UDP layer.
func NewParticipant(env *stack.Env, net *rudp.Layer, opts ...ParticipantOption) *Participant {
	p := &Participant{
		env:            env,
		net:            net,
		id:             env.Node,
		log:            trace.NewLog(),
		prepareTimeout: 5 * time.Second,
		states:         make(map[uint32]TxState),
		timers:         make(map[uint32]*simtime.Event),
	}
	for _, opt := range opts {
		opt(p)
	}
	net.OnDeliver(p.handle)
	return p
}

// State reports the participant's view of a transaction.
func (p *Participant) State(tx uint32) TxState {
	if s, ok := p.states[tx]; ok {
		return s
	}
	return StateIdle
}

// Events returns the participant's log.
func (p *Participant) Events() *trace.Log { return p.log }

func (p *Participant) handle(src string, payload []byte) {
	m, err := DecodeMsg(payload)
	if err != nil {
		return
	}
	switch m.Type {
	case TypePrepare:
		p.onPrepare(src, m.TxID)
	case TypeCommit:
		p.decide(m.TxID, StateCommitted)
	case TypeAbort:
		p.decide(m.TxID, StateAborted)
	}
}

func (p *Participant) onPrepare(coord string, tx uint32) {
	if s := p.State(tx); s != StateIdle && s != StatePreparing {
		// Duplicate PREPARE after we voted: repeat the vote.
		if s == StatePrepared {
			p.send(coord, &Msg{Type: TypeVoteYes, TxID: tx, From: p.id})
		}
		return
	}
	yes := p.vote == nil || p.vote(tx)
	if !yes {
		p.states[tx] = StateAborted // a NO vote is a unilateral abort
		p.logEvent(tx, "vote", "NO")
		p.send(coord, &Msg{Type: TypeVoteNo, TxID: tx, From: p.id})
		return
	}
	p.states[tx] = StatePrepared
	p.logEvent(tx, "vote", "YES (entering the blocking window)")
	p.cancelTimer(tx)
	p.send(coord, &Msg{Type: TypeVoteYes, TxID: tx, From: p.id})
	p.armBlockedCheck(tx)
}

// armBlockedCheck periodically records that a prepared participant is
// still waiting: having voted YES it can neither commit nor abort on its
// own. (A full system would run a cooperative termination protocol here;
// plain 2PC just blocks, which is exactly what the fault injection
// demonstrates.)
func (p *Participant) armBlockedCheck(tx uint32) {
	p.timers[tx] = p.env.Sched.After(p.prepareTimeout, "tpc-blocked", func() {
		if p.State(tx) != StatePrepared {
			return
		}
		p.logEvent(tx, "blocked", "voted YES; cannot decide unilaterally")
		p.armBlockedCheck(tx)
	})
}

// decide applies the coordinator's outcome.
func (p *Participant) decide(tx uint32, outcome TxState) {
	if s := p.State(tx); s == StateCommitted || s == StateAborted {
		return
	}
	p.states[tx] = outcome
	p.cancelTimer(tx)
	p.logEvent(tx, "decide", outcome.String())
}

func (p *Participant) cancelTimer(tx uint32) {
	if ev, ok := p.timers[tx]; ok {
		p.env.Sched.Cancel(ev)
		delete(p.timers, tx)
	}
}

func (p *Participant) send(dst string, m *Msg) {
	if err := p.net.Send(dst, m.Encode()); err != nil {
		p.logEvent(m.TxID, "send-error", err.Error())
	}
}

func (p *Participant) logEvent(tx uint32, kind, note string) {
	p.log.Addf(p.env.Now(), p.id, kind, "", uint64(tx), note)
}

// Coordinator drives transactions across participants.
type Coordinator struct {
	env   *stack.Env
	net   *rudp.Layer
	id    string
	log   *trace.Log
	vt    time.Duration // vote-collection timeout
	crash bool          // a crashed coordinator does nothing

	nextTx uint32
	open   map[uint32]*txRun
}

type txRun struct {
	participants []string
	votes        map[string]bool
	decided      bool
	outcome      TxState
	timer        *simtime.Event
	onDone       func(TxState)
}

// CoordinatorOption configures a coordinator.
type CoordinatorOption func(*Coordinator)

// WithVoteTimeout overrides the vote-collection timeout (default 5 s).
func WithVoteTimeout(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.vt = d }
}

// WithCoordinatorTrace mirrors events into lg.
func WithCoordinatorTrace(lg *trace.Log) CoordinatorOption {
	return func(c *Coordinator) { c.log = lg }
}

// NewCoordinator builds a coordinator bound to a reliable-UDP layer.
func NewCoordinator(env *stack.Env, net *rudp.Layer, opts ...CoordinatorOption) *Coordinator {
	c := &Coordinator{
		env:  env,
		net:  net,
		id:   env.Node,
		log:  trace.NewLog(),
		vt:   5 * time.Second,
		open: make(map[uint32]*txRun),
	}
	for _, opt := range opts {
		opt(c)
	}
	net.OnDeliver(c.handle)
	return c
}

// Events returns the coordinator's log.
func (c *Coordinator) Events() *trace.Log { return c.log }

// Crash halts the coordinator: pending transactions hang, new ones fail.
// (The PFI experiments usually crash it from the outside with a filter;
// this models a true process halt.)
func (c *Coordinator) Crash() { c.crash = true }

// Recover un-crashes the coordinator and re-decides open transactions:
// any transaction with a full set of YES votes commits, the rest abort,
// and already-decided outcomes whose announcements may have been lost are
// re-sent. This is what finally unblocks prepared participants.
func (c *Coordinator) Recover() {
	c.crash = false
	for tx, run := range c.open {
		if run.decided {
			c.announce(tx, run)
			continue
		}
		if len(run.votes) == len(run.participants) && allYes(run.votes) {
			c.decide(tx, run, StateCommitted)
		} else {
			c.decide(tx, run, StateAborted)
		}
	}
}

// Begin starts two-phase commit over the participants. onDone (optional)
// receives the final outcome.
func (c *Coordinator) Begin(participants []string, onDone func(TxState)) (uint32, error) {
	if c.crash {
		return 0, fmt.Errorf("tpc: coordinator crashed")
	}
	if len(participants) == 0 {
		return 0, fmt.Errorf("tpc: no participants")
	}
	c.nextTx++
	tx := c.nextTx
	run := &txRun{
		participants: append([]string(nil), participants...),
		votes:        make(map[string]bool),
		onDone:       onDone,
	}
	c.open[tx] = run
	c.log.Addf(c.env.Now(), c.id, "begin", "", uint64(tx), fmt.Sprintf("%v", participants))
	for _, p := range run.participants {
		if err := c.net.Send(p, (&Msg{Type: TypePrepare, TxID: tx, From: c.id}).Encode()); err != nil {
			return 0, err
		}
	}
	run.timer = c.env.Sched.After(c.vt, "tpc-vote-timeout", func() {
		c.onVoteTimeout(tx)
	})
	return tx, nil
}

// Outcome reports the coordinator's decision (StateIdle if still open).
func (c *Coordinator) Outcome(tx uint32) TxState {
	run, ok := c.open[tx]
	if !ok || !run.decided {
		return StateIdle
	}
	return run.outcome
}

func (c *Coordinator) handle(src string, payload []byte) {
	if c.crash {
		return // a halted process reads nothing
	}
	m, err := DecodeMsg(payload)
	if err != nil {
		return
	}
	run, ok := c.open[m.TxID]
	if !ok || run.decided {
		return
	}
	switch m.Type {
	case TypeVoteYes:
		run.votes[m.From] = true
	case TypeVoteNo:
		run.votes[m.From] = false
		c.decide(m.TxID, run, StateAborted)
		return
	default:
		return
	}
	if len(run.votes) == len(run.participants) && allYes(run.votes) {
		c.decide(m.TxID, run, StateCommitted)
	}
}

func (c *Coordinator) onVoteTimeout(tx uint32) {
	if c.crash {
		return
	}
	run, ok := c.open[tx]
	if !ok || run.decided {
		return
	}
	c.decide(tx, run, StateAborted)
}

func (c *Coordinator) decide(tx uint32, run *txRun, outcome TxState) {
	run.decided = true
	run.outcome = outcome
	if run.timer != nil {
		c.env.Sched.Cancel(run.timer)
	}
	c.log.Addf(c.env.Now(), c.id, "decide", "", uint64(tx), outcome.String())
	c.announce(tx, run)
	if run.onDone != nil {
		run.onDone(outcome)
	}
}

// announce (re-)sends a decided transaction's outcome to every participant.
func (c *Coordinator) announce(tx uint32, run *txRun) {
	typ := uint8(TypeAbort)
	if run.outcome == StateCommitted {
		typ = TypeCommit
	}
	for _, p := range run.participants {
		if err := c.net.Send(p, (&Msg{Type: typ, TxID: tx, From: c.id}).Encode()); err != nil {
			c.log.Addf(c.env.Now(), c.id, "send-error", "", uint64(tx), err.Error())
		}
	}
}

func allYes(votes map[string]bool) bool {
	for _, v := range votes {
		if !v {
			return false
		}
	}
	return true
}

// PFIStub recognizes 2PC messages through the rudp framing (the PFI layer
// sits below the reliability layer, like GMP's).
type PFIStub struct{}

var _ core.Stub = PFIStub{}

// Protocol implements core.Stub.
func (PFIStub) Protocol() string { return "tpc" }

// Recognize implements core.Stub.
func (PFIStub) Recognize(m *message.Message) (core.Info, error) {
	f, err := rudp.Decode(m)
	if err != nil {
		return core.Info{}, err
	}
	if f.Kind == rudp.KindAck {
		return core.Info{Type: "RUDP-ACK", Fields: f.Fields()}, nil
	}
	tm, err := DecodeMsg(f.Payload)
	if err != nil {
		return core.Info{}, fmt.Errorf("tpc stub: %w", err)
	}
	return core.Info{Type: TypeName(tm.Type), Fields: map[string]string{
		"tx":   fmt.Sprintf("%d", tm.TxID),
		"from": tm.From,
	}}, nil
}

// Generate implements core.Stub: stateless 2PC messages (a spurious ABORT
// is the 2PC analogue of the paper's spurious TCP ACK).
func (PFIStub) Generate(typ string, fields map[string]string) (*message.Message, error) {
	var t uint8
	for id, name := range typeNames {
		if name == typ {
			t = id
			break
		}
	}
	if t == 0 {
		return nil, fmt.Errorf("tpc stub: cannot generate %q", typ)
	}
	m := &Msg{Type: t, From: fields["from"]}
	if s := fields["tx"]; s != "" {
		if _, err := fmt.Sscanf(s, "%d", &m.TxID); err != nil {
			return nil, fmt.Errorf("tpc stub: bad tx %q", s)
		}
	}
	f := &rudp.Frame{Kind: rudp.KindRaw, Payload: m.Encode()}
	return f.Encode(), nil
}
