package fleet

// Span is one contiguous shard of an index space: cells [Lo, Hi).
type Span struct {
	Lo, Hi int
}

// Len returns the number of cells in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Plan splits n cells into at most shards contiguous spans that cover
// 0..n-1 exactly once, in order. Sizes differ by at most one, with the
// larger spans first, so any prefix of the plan is as balanced as the
// whole. Degenerate inputs stay sane: shards < 1 plans one span, n == 0
// plans none, and shards > n plans one single-cell span per cell.
//
// The plan is a pure function of (n, shards) — it never consults the
// live worker pool, so a pool that shrinks (or grows) mid-run changes
// only who executes a span, never what the spans are. Loss recovery
// reassigns spans; it never replans.
func Plan(n, shards int) []Span {
	if n <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	base, rem := n/shards, n%shards
	out := make([]Span, 0, shards)
	lo := 0
	for i := 0; i < shards; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Span{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}
