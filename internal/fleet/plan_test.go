package fleet

import (
	"reflect"
	"testing"
)

// TestPlan pins the shard planner's shape on every edge the coordinator
// can hand it: empty matrices, single cells, more shards than cells, and
// uneven divisions.
func TestPlan(t *testing.T) {
	tests := []struct {
		name      string
		n, shards int
		want      []Span
	}{
		{"empty matrix", 0, 4, nil},
		{"negative n", -3, 4, nil},
		{"one cell one shard", 1, 1, []Span{{0, 1}}},
		{"one cell many shards", 1, 8, []Span{{0, 1}}},
		{"cells fewer than shards", 3, 8, []Span{{0, 1}, {1, 2}, {2, 3}}},
		{"exact division", 8, 4, []Span{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
		{"uneven division", 10, 4, []Span{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
		{"zero shards clamps to one", 5, 0, []Span{{0, 5}}},
		{"negative shards clamps to one", 5, -2, []Span{{0, 5}}},
		{"single shard", 7, 1, []Span{{0, 7}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Plan(tt.n, tt.shards)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Plan(%d, %d) = %v, want %v", tt.n, tt.shards, got, tt.want)
			}
		})
	}
}

// TestPlanCoversExactly sweeps a grid of (n, shards) and checks the
// invariants the merge depends on: spans are contiguous, cover [0, n)
// exactly once, and sizes differ by at most one with larger spans first.
func TestPlanCoversExactly(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for shards := -1; shards <= 12; shards++ {
			spans := Plan(n, shards)
			if n <= 0 {
				if spans != nil {
					t.Fatalf("Plan(%d, %d) = %v, want nil", n, shards, spans)
				}
				continue
			}
			lo, min, max := 0, n+1, 0
			for _, sp := range spans {
				if sp.Lo != lo {
					t.Fatalf("Plan(%d, %d): span %v not contiguous at %d", n, shards, sp, lo)
				}
				if sp.Len() <= 0 {
					t.Fatalf("Plan(%d, %d): empty span %v", n, shards, sp)
				}
				if sp.Len() < min {
					min = sp.Len()
				}
				if sp.Len() > max {
					max = sp.Len()
				}
				lo = sp.Hi
			}
			if lo != n {
				t.Fatalf("Plan(%d, %d) covers [0,%d), want [0,%d)", n, shards, lo, n)
			}
			if max-min > 1 {
				t.Fatalf("Plan(%d, %d): span sizes range %d..%d, want spread <= 1", n, shards, min, max)
			}
			for i := 1; i < len(spans); i++ {
				if spans[i].Len() > spans[i-1].Len() {
					t.Fatalf("Plan(%d, %d): span %d larger than span %d", n, shards, i, i-1)
				}
			}
		}
	}
}

// TestPlanIgnoresPoolSize pins the replanning contract: the plan is a
// pure function of (n, shards) — a worker pool that shrinks or grows
// mid-run can change who executes a span, never what the spans are.
func TestPlanIgnoresPoolSize(t *testing.T) {
	first := Plan(36, 8)
	for i := 0; i < 5; i++ {
		if got := Plan(36, 8); !reflect.DeepEqual(got, first) {
			t.Fatalf("Plan(36, 8) unstable: %v then %v", first, got)
		}
	}
}
