package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/explore"
	"pfi/internal/tcp"
)

// Worker-side fault-injection hooks, read from the environment so the
// control plane's own failure modes can be exercised from real separate
// processes: a worker that SIGKILLs itself holding a lease (the kill -9
// mid-batch of the test battery) or stalls past the unit timeout.
const (
	// EnvDieOnLease ("1"): SIGKILL this process immediately after its
	// first unit lease is granted — the unit dies leased, exercising
	// EOF-driven loss recovery.
	EnvDieOnLease = "PFI_FLEET_DIE_ON_LEASE"
	// EnvStallOnLease ("1"): block forever after the first unit lease —
	// the worker stays alive but silent, exercising the lease reaper.
	EnvStallOnLease = "PFI_FLEET_STALL_ON_LEASE"
)

var (
	scenarioMu sync.RWMutex
	scenarios  = map[string]campaign.Scenario{}
)

// RegisterScenario publishes a campaign scenario under a name workers
// resolve jobs against. Coordinator and workers must register the same
// deterministic scenario for the fleet's merge to equal the in-process
// sweep — the name is the contract, the registry keeps functions out of
// the wire protocol.
func RegisterScenario(name string, s campaign.Scenario) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	scenarios[name] = s
}

func scenarioByName(name string) (campaign.Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	s, ok := scenarios[name]
	return s, ok
}

// Conn is a worker's request/response channel to the coordinator. Both
// transports satisfy it: stdio frames (stdioConn) and HTTP POSTs
// (httpConn).
type Conn interface {
	// RoundTrip sends one envelope and returns the coordinator's reply.
	RoundTrip(Envelope) (Envelope, error)
	// Close releases the transport.
	Close() error
}

// workerHooks observe a worker session's lifecycle; RunWorkerReconnect
// uses them to reset its backoff on progress and to detect re-adoption
// by a restarted coordinator.
type workerHooks struct {
	// onJob fires once per admission with the assigned job and the
	// coordinator's journal epoch (0: no journal).
	onJob func(job Job, epoch int)
	// onProgress fires after each completed unit.
	onProgress func()
}

// RunWorker drives the worker side of the protocol over an established
// connection: hello, then lease -> execute (streaming each finished
// cell) -> result until drained. name is the worker's self-description
// (diagnostics only). It returns nil on a clean drain and the first
// transport or protocol error otherwise — a worker that cannot make
// progress exits and lets the coordinator's loss recovery own its
// units. Use RunWorkerReconnect for workers that should outlive a
// coordinator restart.
func RunWorker(conn Conn, name string) error {
	return runWorker(conn, name, workerHooks{})
}

func runWorker(conn Conn, name string, hooks workerHooks) error {
	defer conn.Close()
	resp, err := conn.RoundTrip(Envelope{V: ProtocolVersion, Type: MsgHello, Worker: name})
	if err != nil {
		return fmt.Errorf("fleet: hello: %w", err)
	}
	if err := checkReply(resp, MsgJob); err != nil {
		return err
	}
	if resp.Job == nil || resp.Session == "" {
		return fmt.Errorf("fleet: job reply missing job or session")
	}
	job, session := *resp.Job, resp.Session
	if hooks.onJob != nil {
		hooks.onJob(job, resp.Epoch)
	}
	leased := 0
	for {
		resp, err := conn.RoundTrip(Envelope{V: ProtocolVersion, Type: MsgLease, Session: session})
		if err != nil {
			return fmt.Errorf("fleet: lease: %w", err)
		}
		switch resp.Type {
		case MsgWait:
			continue
		case MsgDrain:
			return nil
		case MsgUnit:
			if resp.Unit == nil {
				return fmt.Errorf("fleet: unit reply carries no unit")
			}
			if leased == 0 {
				applyFaultHooks()
			}
			leased++
			// Stream each cell as it completes, then mark the unit done
			// with an empty result — the coordinator already holds every
			// cell, and anything streamed survives even if this process
			// dies before the marker.
			err := executeUnitStream(job, *resp.Unit, func(cell WireCell) error {
				ack, cerr := conn.RoundTrip(Envelope{V: ProtocolVersion, Type: MsgCell, Session: session, Cell: &cell})
				if cerr != nil {
					return cerr
				}
				return checkReply(ack, MsgAck)
			})
			if err != nil {
				return fmt.Errorf("fleet: unit %d: %w", resp.Unit.ID, err)
			}
			ack, err := conn.RoundTrip(Envelope{V: ProtocolVersion, Type: MsgResult, Session: session, Result: &Result{Unit: resp.Unit.ID}})
			if err != nil {
				return fmt.Errorf("fleet: result: %w", err)
			}
			if err := checkReply(ack, MsgAck); err != nil {
				return err
			}
			if hooks.onProgress != nil {
				hooks.onProgress()
			}
		default:
			return replyError(resp)
		}
	}
}

// Reconnect tunes RunWorkerReconnect's retry loop.
type Reconnect struct {
	// MaxAttempts bounds consecutive failed attempts before giving up
	// (default 8). Completing a unit resets the count — a worker that is
	// making progress retries indefinitely.
	MaxAttempts int
	// BaseDelay is the first backoff (default 100ms); each consecutive
	// failure doubles it up to MaxDelay (default 5s). The actual sleep
	// is jittered into [d/2, d] so a restarted coordinator is not hit by
	// every worker at once.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Log receives reconnect diagnostics (nil: silent).
	Log func(format string, args ...any)
}

func (rc Reconnect) withDefaults() Reconnect {
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = 8
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = 100 * time.Millisecond
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = 5 * time.Second
	}
	if rc.Log == nil {
		rc.Log = func(string, ...any) {}
	}
	return rc
}

// reconnectBackoffs counts backoff sleeps taken by RunWorkerReconnect
// process-wide, exported on /metrics (meaningful for in-process HTTP
// workers; spawned workers keep their own).
var reconnectBackoffs atomic.Uint64

// ReconnectBackoffs reports how many reconnect backoffs workers in this
// process have taken.
func ReconnectBackoffs() uint64 { return reconnectBackoffs.Load() }

// RunWorkerReconnect runs a worker session and, instead of exiting on a
// lost coordinator, redials with exponential backoff plus jitter. A
// coordinator restart therefore does not shrink the fleet: the worker
// rejoins the new coordinator (observing its bumped epoch) and keeps
// leasing. Returns nil on a clean drain, the context error on cancel,
// and the last session error once MaxAttempts consecutive attempts fail
// without completing a unit.
func RunWorkerReconnect(ctx context.Context, dial func() (Conn, error), name string, rc Reconnect) error {
	rc = rc.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := 0
	lastEpoch := -1
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed := false
		conn, err := dial()
		if err == nil {
			err = runWorker(conn, name, workerHooks{
				onJob: func(_ Job, epoch int) {
					if lastEpoch >= 0 && epoch != lastEpoch {
						rc.Log("fleet: worker %s re-adopted by restarted coordinator (epoch %d -> %d)", name, lastEpoch, epoch)
					}
					lastEpoch = epoch
				},
				onProgress: func() { progressed = true; attempts = 0 },
			})
			if err == nil {
				return nil // clean drain
			}
		}
		attempts++
		if attempts > rc.MaxAttempts {
			return fmt.Errorf("fleet: worker %s giving up after %d attempts: %w", name, attempts-1, err)
		}
		reconnectBackoffs.Add(1)
		delay := backoffDelay(rc.BaseDelay, rc.MaxDelay, attempts)
		rc.Log("fleet: worker %s lost coordinator (%v); reconnecting in %s (attempt %d, progressed=%t)",
			name, err, delay.Round(time.Millisecond), attempts, progressed)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// backoffDelay computes the attempt'th exponential backoff, jittered
// into [d/2, d].
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half+1))
}

// checkReply validates a coordinator reply's version and type.
func checkReply(e Envelope, want string) error {
	if e.Type == MsgError {
		return replyError(e)
	}
	if e.V != ProtocolVersion {
		return fmt.Errorf("fleet: protocol version mismatch: worker speaks v%d, coordinator sent v%d", ProtocolVersion, e.V)
	}
	if e.Type != want {
		return fmt.Errorf("fleet: unexpected %q reply (want %q)", e.Type, want)
	}
	return nil
}

func replyError(e Envelope) error {
	if e.Error != "" {
		return fmt.Errorf("fleet: coordinator rejected: %s", e.Error)
	}
	return fmt.Errorf("fleet: unexpected %q reply", e.Type)
}

// applyFaultHooks honors the environment-driven control-plane fault
// injection on the first granted lease.
func applyFaultHooks() {
	if os.Getenv(EnvDieOnLease) == "1" {
		// kill -9 ourselves: no deferred cleanup, no goodbye frame — the
		// coordinator must recover from a raw EOF with a unit leased.
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		time.Sleep(time.Minute) // unreachable; belt for non-delivery races
	}
	if os.Getenv(EnvStallOnLease) == "1" {
		select {} // hold the lease forever; only the reaper ends this
	}
}

// executeUnitStream runs one leased unit cell by cell, in order, through
// the isolation layer, handing each finished cell to emit — the worker's
// streaming hook. An emit error aborts the unit (the transport is gone;
// the coordinator's loss recovery owns the rest).
func executeUnitStream(job Job, u Unit, emit func(WireCell) error) error {
	cfg := job.Harden.Config()
	switch job.Kind {
	case JobCampaign:
		if job.Spec == nil {
			return fmt.Errorf("fleet: campaign job carries no spec")
		}
		scenario, ok := scenarioByName(job.Scenario)
		if !ok {
			return fmt.Errorf("fleet: scenario %q not registered in this worker", job.Scenario)
		}
		cases, err := campaign.Generate(*job.Spec)
		if err != nil {
			return err
		}
		if u.Lo < 0 || u.Hi > len(cases) || u.Lo > u.Hi {
			return fmt.Errorf("fleet: unit [%d,%d) outside matrix of %d cases", u.Lo, u.Hi, len(cases))
		}
		for i := u.Lo; i < u.Hi; i++ {
			v := campaign.RunCase(cases[i], scenario, cfg, nil)
			wv := verdictToWire(i, v)
			if err := emit(WireCell{Unit: u.ID, Verdict: &wv}); err != nil {
				return err
			}
		}
	case JobFuzz:
		prof, err := tcp.ProfileByName(job.Profile)
		if err != nil {
			return err
		}
		if len(u.Schedules) != u.Hi-u.Lo {
			return fmt.Errorf("fleet: unit [%d,%d) carries %d schedules", u.Lo, u.Hi, len(u.Schedules))
		}
		for i, s := range u.Schedules {
			o := explore.EvaluateWith(s, prof, cfg)
			wo := outcomeToWire(u.Lo+i, o)
			if err := emit(WireCell{Unit: u.ID, Outcome: &wo}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("fleet: unknown job kind %q", job.Kind)
	}
	return nil
}

// executeUnit runs one leased unit to completion and collects its cells
// into a full Result — the v1-style payload, still used by handler-core
// tests and accepted by the coordinator's fold path.
func executeUnit(job Job, u Unit) (*Result, error) {
	res := &Result{Unit: u.ID}
	err := executeUnitStream(job, u, func(cell WireCell) error {
		switch {
		case cell.Verdict != nil:
			res.Verdicts = append(res.Verdicts, *cell.Verdict)
		case cell.Outcome != nil:
			res.Outcomes = append(res.Outcomes, *cell.Outcome)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// verdictToWire projects a verdict onto its wire form.
func verdictToWire(index int, v campaign.Verdict) WireVerdict {
	w := WireVerdict{
		Index:     index,
		OK:        v.OK,
		Note:      v.Note,
		Outcome:   int(v.Outcome),
		ElapsedUS: v.Elapsed.Microseconds(),
	}
	if v.Err != nil {
		w.Err = v.Err.Error()
	}
	if v.Isolation != nil {
		w.Retries = v.Isolation.Retries
	}
	return w
}

// outcomeToWire projects an outcome onto its wire form.
func outcomeToWire(index int, o *explore.Outcome) WireOutcome {
	return WireOutcome{
		Index:      index,
		Schedule:   o.Schedule,
		Cov:        covToWire(o.Cov),
		Violations: o.Violations,
	}
}
