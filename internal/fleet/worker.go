package fleet

import (
	"fmt"
	"os"
	"sync"
	"syscall"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/explore"
	"pfi/internal/tcp"
)

// Worker-side fault-injection hooks, read from the environment so the
// control plane's own failure modes can be exercised from real separate
// processes: a worker that SIGKILLs itself holding a lease (the kill -9
// mid-batch of the test battery) or stalls past the unit timeout.
const (
	// EnvDieOnLease ("1"): SIGKILL this process immediately after its
	// first unit lease is granted — the unit dies leased, exercising
	// EOF-driven loss recovery.
	EnvDieOnLease = "PFI_FLEET_DIE_ON_LEASE"
	// EnvStallOnLease ("1"): block forever after the first unit lease —
	// the worker stays alive but silent, exercising the lease reaper.
	EnvStallOnLease = "PFI_FLEET_STALL_ON_LEASE"
)

var (
	scenarioMu sync.RWMutex
	scenarios  = map[string]campaign.Scenario{}
)

// RegisterScenario publishes a campaign scenario under a name workers
// resolve jobs against. Coordinator and workers must register the same
// deterministic scenario for the fleet's merge to equal the in-process
// sweep — the name is the contract, the registry keeps functions out of
// the wire protocol.
func RegisterScenario(name string, s campaign.Scenario) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	scenarios[name] = s
}

func scenarioByName(name string) (campaign.Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	s, ok := scenarios[name]
	return s, ok
}

// Conn is a worker's request/response channel to the coordinator. Both
// transports satisfy it: stdio frames (stdioConn) and HTTP POSTs
// (httpConn).
type Conn interface {
	// RoundTrip sends one envelope and returns the coordinator's reply.
	RoundTrip(Envelope) (Envelope, error)
	// Close releases the transport.
	Close() error
}

// RunWorker drives the worker side of the protocol over an established
// connection: hello, then lease -> execute -> result until drained. name
// is the worker's self-description (diagnostics only). It returns nil on
// a clean drain and the first transport or protocol error otherwise — a
// worker that cannot make progress exits and lets the coordinator's loss
// recovery own its units.
func RunWorker(conn Conn, name string) error {
	defer conn.Close()
	resp, err := conn.RoundTrip(Envelope{V: ProtocolVersion, Type: MsgHello, Worker: name})
	if err != nil {
		return fmt.Errorf("fleet: hello: %w", err)
	}
	if err := checkReply(resp, MsgJob); err != nil {
		return err
	}
	if resp.Job == nil || resp.Session == "" {
		return fmt.Errorf("fleet: job reply missing job or session")
	}
	job, session := *resp.Job, resp.Session
	leased := 0
	for {
		resp, err := conn.RoundTrip(Envelope{V: ProtocolVersion, Type: MsgLease, Session: session})
		if err != nil {
			return fmt.Errorf("fleet: lease: %w", err)
		}
		switch resp.Type {
		case MsgWait:
			continue
		case MsgDrain:
			return nil
		case MsgUnit:
			if resp.Unit == nil {
				return fmt.Errorf("fleet: unit reply carries no unit")
			}
			if leased == 0 {
				applyFaultHooks()
			}
			leased++
			res, err := executeUnit(job, *resp.Unit)
			if err != nil {
				return fmt.Errorf("fleet: unit %d: %w", resp.Unit.ID, err)
			}
			ack, err := conn.RoundTrip(Envelope{V: ProtocolVersion, Type: MsgResult, Session: session, Result: res})
			if err != nil {
				return fmt.Errorf("fleet: result: %w", err)
			}
			if err := checkReply(ack, MsgAck); err != nil {
				return err
			}
		default:
			return replyError(resp)
		}
	}
}

// checkReply validates a coordinator reply's version and type.
func checkReply(e Envelope, want string) error {
	if e.Type == MsgError {
		return replyError(e)
	}
	if e.V != ProtocolVersion {
		return fmt.Errorf("fleet: protocol version mismatch: worker speaks v%d, coordinator sent v%d", ProtocolVersion, e.V)
	}
	if e.Type != want {
		return fmt.Errorf("fleet: unexpected %q reply (want %q)", e.Type, want)
	}
	return nil
}

func replyError(e Envelope) error {
	if e.Error != "" {
		return fmt.Errorf("fleet: coordinator rejected: %s", e.Error)
	}
	return fmt.Errorf("fleet: unexpected %q reply", e.Type)
}

// applyFaultHooks honors the environment-driven control-plane fault
// injection on the first granted lease.
func applyFaultHooks() {
	if os.Getenv(EnvDieOnLease) == "1" {
		// kill -9 ourselves: no deferred cleanup, no goodbye frame — the
		// coordinator must recover from a raw EOF with a unit leased.
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		time.Sleep(time.Minute) // unreachable; belt for non-delivery races
	}
	if os.Getenv(EnvStallOnLease) == "1" {
		select {} // hold the lease forever; only the reaper ends this
	}
}

// executeUnit runs one leased unit to completion: every cell, in order,
// through the isolation layer, exactly as the in-process paths would.
func executeUnit(job Job, u Unit) (*Result, error) {
	res := &Result{Unit: u.ID}
	cfg := job.Harden.Config()
	switch job.Kind {
	case JobCampaign:
		if job.Spec == nil {
			return nil, fmt.Errorf("fleet: campaign job carries no spec")
		}
		scenario, ok := scenarioByName(job.Scenario)
		if !ok {
			return nil, fmt.Errorf("fleet: scenario %q not registered in this worker", job.Scenario)
		}
		cases, err := campaign.Generate(*job.Spec)
		if err != nil {
			return nil, err
		}
		if u.Lo < 0 || u.Hi > len(cases) || u.Lo > u.Hi {
			return nil, fmt.Errorf("fleet: unit [%d,%d) outside matrix of %d cases", u.Lo, u.Hi, len(cases))
		}
		for i := u.Lo; i < u.Hi; i++ {
			v := campaign.RunCase(cases[i], scenario, cfg, nil)
			res.Verdicts = append(res.Verdicts, verdictToWire(i, v))
		}
	case JobFuzz:
		prof, err := tcp.ProfileByName(job.Profile)
		if err != nil {
			return nil, err
		}
		if len(u.Schedules) != u.Hi-u.Lo {
			return nil, fmt.Errorf("fleet: unit [%d,%d) carries %d schedules", u.Lo, u.Hi, len(u.Schedules))
		}
		for i, s := range u.Schedules {
			o := explore.EvaluateWith(s, prof, cfg)
			res.Outcomes = append(res.Outcomes, outcomeToWire(u.Lo+i, o))
		}
	default:
		return nil, fmt.Errorf("fleet: unknown job kind %q", job.Kind)
	}
	return res, nil
}

// verdictToWire projects a verdict onto its wire form.
func verdictToWire(index int, v campaign.Verdict) WireVerdict {
	w := WireVerdict{
		Index:     index,
		OK:        v.OK,
		Note:      v.Note,
		Outcome:   int(v.Outcome),
		ElapsedUS: v.Elapsed.Microseconds(),
	}
	if v.Err != nil {
		w.Err = v.Err.Error()
	}
	if v.Isolation != nil {
		w.Retries = v.Isolation.Retries
	}
	return w
}

// outcomeToWire projects an outcome onto its wire form.
func outcomeToWire(index int, o *explore.Outcome) WireOutcome {
	return WireOutcome{
		Index:      index,
		Schedule:   o.Schedule,
		Cov:        covToWire(o.Cov),
		Violations: o.Violations,
	}
}
