package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/harden"
	"pfi/internal/journal"
)

// NewCampaign builds a coordinator that shards the given campaign matrix
// over the fleet. scenario names the registered scenario every worker
// drives cells through (see RegisterScenario); hw is the deterministic
// isolation policy each cell runs under on the worker.
func NewCampaign(spec campaign.Spec, scenario string, hw WireHarden, cfg Config) *Coordinator {
	sp := spec
	return NewCoordinator(Job{Kind: JobCampaign, Spec: &sp, Scenario: scenario, Harden: hw}, cfg)
}

// RunCampaign shards the job's case matrix into units, dispatches them
// to whatever workers join, and merges the verdict stream back in
// generation order — bit-identical (status, name, ok, note, error text)
// to single-process campaign.RunParallel with the same spec, scenario,
// and harden knobs, at any shard count and any completion order. With
// Config.Journal set, cells already journaled (by a previous
// coordinator, or an in-process sweep — the records are shared) are
// restored instead of dispatched, and every newly merged cell streams
// into the log as it lands.
func (c *Coordinator) RunCampaign(ctx context.Context) ([]campaign.Verdict, campaign.RunStats, error) {
	if c.job.Kind != JobCampaign {
		return nil, campaign.RunStats{}, fmt.Errorf("fleet: RunCampaign on a %s coordinator", c.job.Kind)
	}
	cases, err := campaign.Generate(*c.job.Spec)
	if err != nil {
		return nil, campaign.RunStats{}, err
	}
	resumed, err := c.attachCampaignJournal(cases)
	if err != nil {
		return nil, campaign.RunStats{}, err
	}
	journal.CountResumed(resumed)
	start := time.Now()
	results, err := c.RunRound(ctx, c.newRound(len(cases), nil))

	verdicts := make([]campaign.Verdict, 0, len(cases))
	retries := 0
	for _, res := range results {
		if res == nil {
			continue // round aborted before this unit landed
		}
		for _, wv := range res.Verdicts {
			verdicts = append(verdicts, verdictFromWire(cases[wv.Index], wv))
			retries += wv.Retries
		}
	}
	if c.cfg.Journal != nil {
		if serr := c.cfg.Journal.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	stats := campaignStats(verdicts, retries, c.Stats().WorkersSeen, time.Since(start))
	stats.Resumed = resumed
	return verdicts, stats, err
}

// verdictFromWire rebuilds a campaign.Verdict from its wire projection,
// reattaching the locally regenerated case. Isolation records do not
// travel (their stacks are worker-side); the outcome kind and error text
// do.
func verdictFromWire(cs campaign.Case, w WireVerdict) campaign.Verdict {
	v := campaign.Verdict{
		Case:    cs,
		OK:      w.OK,
		Note:    w.Note,
		Outcome: harden.Kind(w.Outcome),
		Elapsed: time.Duration(w.ElapsedUS) * time.Microsecond,
	}
	if w.Err != "" {
		v.Err = errors.New(w.Err)
	}
	return v
}

// campaignStats recomputes sweep statistics from merged verdicts — the
// same classification finish() applies in-process.
func campaignStats(vs []campaign.Verdict, retries, workers int, elapsed time.Duration) campaign.RunStats {
	stats := campaign.RunStats{Cases: len(vs), Workers: workers, Elapsed: elapsed, Retries: retries}
	for i := range vs {
		switch {
		case vs[i].Err != nil:
			stats.Errored++
		case vs[i].OK:
			stats.Passed++
		default:
			stats.Failed++
		}
		switch vs[i].Outcome {
		case harden.ToolFault:
			stats.Crashes++
		case harden.Timeout, harden.Livelock:
			stats.Timeouts++
		}
	}
	if s := elapsed.Seconds(); s > 0 {
		stats.CasesPerSecond = float64(stats.Cases) / s
	}
	return stats
}

// CanonVerdicts renders a verdict stream canonically for cross-process
// comparison: one line per verdict with every deterministic field —
// status, case name, ok, note, error text, outcome — and none of the
// wall-clock ones (elapsed, isolation stacks, repro paths live outside
// this projection). Two runs are "the same sweep" exactly when their
// canonical streams are byte-identical.
func CanonVerdicts(vs []campaign.Verdict) string {
	var b strings.Builder
	for _, v := range vs {
		errText := ""
		if v.Err != nil {
			errText = v.Err.Error()
		}
		fmt.Fprintf(&b, "%s|%s|%t|%s|%s|%d\n", v.Status(), v.Case.Name, v.OK, v.Note, errText, int(v.Outcome))
	}
	return b.String()
}
