package fleet

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/harden"
)

// fastCfg keeps handler-core tests snappy: tiny long-poll window, no
// lease reaper (tests drive losses explicitly).
func fastCfg(shards int) Config {
	return Config{Shards: shards, LeaseWait: 5 * time.Millisecond}
}

// startCampaign runs RunCampaign on a goroutine and returns a channel
// carrying its merged output, so the test body can play the workers
// against the handler core.
type campaignOut struct {
	vs    []campaign.Verdict
	stats campaign.RunStats
	err   error
}

func startCampaign(c *Coordinator) <-chan campaignOut {
	out := make(chan campaignOut, 1)
	go func() {
		vs, stats, err := c.RunCampaign(context.Background())
		out <- campaignOut{vs, stats, err}
	}()
	return out
}

// hello admits a test worker through the handler core and returns its
// session ID.
func hello(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgHello, Worker: name})
	if resp.Type != MsgJob || resp.Session == "" {
		t.Fatalf("hello: got %+v", resp)
	}
	return resp.Session
}

// leaseAll drives lease requests round-robin across the sessions until n
// units are held, returning them keyed by holder.
func leaseAll(t *testing.T, c *Coordinator, sessions []string, n int) []struct {
	session string
	unit    Unit
} {
	t.Helper()
	var held []struct {
		session string
		unit    Unit
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; len(held) < n; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("leased %d/%d units before timeout", len(held), n)
		}
		s := sessions[i%len(sessions)]
		resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgLease, Session: s})
		switch resp.Type {
		case MsgUnit:
			held = append(held, struct {
				session string
				unit    Unit
			}{s, *resp.Unit})
		case MsgWait:
			// round not dispatched yet; poll again
		default:
			t.Fatalf("lease: got %+v", resp)
		}
	}
	return held
}

// submit executes a unit in-process and returns it through the handler
// core, reporting the coordinator's reply type.
func submit(t *testing.T, c *Coordinator, session string, u Unit) Envelope {
	t.Helper()
	res, err := executeUnit(c.Job(), u)
	if err != nil {
		t.Fatalf("executeUnit(%d): %v", u.ID, err)
	}
	return c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgResult, Session: session, Result: res})
}

func awaitCampaign(t *testing.T, out <-chan campaignOut) campaignOut {
	t.Helper()
	select {
	case o := <-out:
		if o.err != nil {
			t.Fatalf("RunCampaign: %v", o.err)
		}
		return o
	case <-time.After(30 * time.Second):
		t.Fatal("RunCampaign never completed")
		return campaignOut{}
	}
}

// TestMergeOrderInvariance proves completion order cannot influence the
// merge: three workers lease all units, then return them in descending
// unit order (the exact reverse of dispatch), and the merged verdict
// stream is still byte-identical to the serial sweep. A duplicate
// submission of an already-merged unit is dropped as stale.
func TestMergeOrderInvariance(t *testing.T) {
	serial, _, err := campaign.Run(sweepSpec, sweepScenario)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, fastCfg(7))
	out := startCampaign(c)
	sessions := []string{hello(t, c, "a"), hello(t, c, "b"), hello(t, c, "c")}
	held := leaseAll(t, c, sessions, 7)
	// Complete in reverse dispatch order — the coordinator must not care.
	sort.Slice(held, func(i, j int) bool { return held[i].unit.ID > held[j].unit.ID })
	for _, h := range held {
		if resp := submit(t, c, h.session, h.unit); resp.Type != MsgAck {
			t.Fatalf("result for unit %d: got %+v", h.unit.ID, resp)
		}
	}
	got := awaitCampaign(t, out)
	if CanonVerdicts(got.vs) != CanonVerdicts(serial) {
		t.Errorf("reverse-order merge differs from serial sweep:\nfleet:\n%s\nserial:\n%s",
			CanonVerdicts(got.vs), CanonVerdicts(serial))
	}
	if got.stats.Cases != len(serial) {
		t.Errorf("stats.Cases = %d, want %d", got.stats.Cases, len(serial))
	}
	// Exactly-once: replaying a completed unit is dropped, not re-merged.
	last := held[len(held)-1]
	if resp := submit(t, c, last.session, last.unit); resp.Type != MsgAck {
		t.Fatalf("duplicate result: got %+v", resp)
	}
	if s := c.Stats(); s.Stale != 1 || s.UnitsDone != 7 || s.Reassigned != 0 {
		t.Errorf("stats after duplicate = %+v, want Stale=1 UnitsDone=7 Reassigned=0", s)
	}
}

// TestPoolShrinksMidRound kills one of two workers partway through a
// round: its leased unit is reassigned exactly once, the survivor drains
// everything, and the merged sweep equals the serial one.
func TestPoolShrinksMidRound(t *testing.T) {
	serial, _, err := campaign.Run(sweepSpec, sweepScenario)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, fastCfg(6))
	out := startCampaign(c)
	doomed, survivor := hello(t, c, "doomed"), hello(t, c, "survivor")
	held := leaseAll(t, c, []string{doomed}, 1)
	c.LoseSession(doomed, harden.ToolFault)
	// The lost session can no longer lease...
	if resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgLease, Session: doomed}); resp.Type != MsgError {
		t.Fatalf("lost session leased again: %+v", resp)
	}
	// ...and its late result for the reassigned unit is dropped as stale.
	if resp := submit(t, c, doomed, held[0].unit); resp.Type != MsgAck {
		t.Fatalf("late result: got %+v", resp)
	}
	if s := c.Stats(); s.Stale != 1 {
		t.Fatalf("stats after late result = %+v, want Stale=1", s)
	}
	for done := 0; done < 6; done++ {
		h := leaseAll(t, c, []string{survivor}, 1)
		if resp := submit(t, c, survivor, h[0].unit); resp.Type != MsgAck {
			t.Fatalf("survivor result: got %+v", resp)
		}
	}
	got := awaitCampaign(t, out)
	if CanonVerdicts(got.vs) != CanonVerdicts(serial) {
		t.Errorf("post-loss merge differs from serial sweep")
	}
	if s := c.Stats(); s.Reassigned != 1 || s.Contained != 0 || s.WorkersLost != 1 {
		t.Errorf("stats = %+v, want Reassigned=1 Contained=0 WorkersLost=1", s)
	}
}

// TestDoubleLossContained loses the same unit twice: the first loss
// reassigns it, the second records its cells as contained verdicts under
// the harden taxonomy instead of reassigning forever.
func TestDoubleLossContained(t *testing.T) {
	spec := campaign.Spec{Protocol: "typed", Types: []string{"DATA"}, Faults: []campaign.FaultKind{campaign.Drop}}
	cases, err := campaign.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCampaign(spec, "sweep", WireHarden{}, fastCfg(1))
	out := startCampaign(c)
	s1 := hello(t, c, "flappy1")
	leaseAll(t, c, []string{s1}, 1)
	c.LoseSession(s1, harden.ToolFault)
	s2 := hello(t, c, "flappy2")
	leaseAll(t, c, []string{s2}, 1)
	c.LoseSession(s2, harden.Timeout)
	got := awaitCampaign(t, out)
	if len(got.vs) != len(cases) {
		t.Fatalf("got %d verdicts, want %d — contained cells must still be merged", len(got.vs), len(cases))
	}
	for _, v := range got.vs {
		if v.Err == nil || !strings.Contains(v.Err.Error(), "reassignment exhausted") {
			t.Errorf("case %q: err = %v, want reassignment-exhausted", v.Case.Name, v.Err)
		}
		if v.Outcome != harden.Timeout {
			t.Errorf("case %q: outcome = %v, want Timeout (the second loss's kind)", v.Case.Name, v.Outcome)
		}
	}
	if s := c.Stats(); s.Reassigned != 1 || s.Contained != 1 || s.UnitsDone != 1 {
		t.Errorf("stats = %+v, want Reassigned=1 Contained=1 UnitsDone=1", s)
	}
}

// TestTruncatedResultReassigned feeds the coordinator a structurally
// truncated result: it must be rejected (never merged), the unit lost
// once and re-executed, and the final sweep clean.
func TestTruncatedResultReassigned(t *testing.T) {
	serial, _, err := campaign.Run(sweepSpec, sweepScenario)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, fastCfg(2))
	out := startCampaign(c)
	s1 := hello(t, c, "w")
	held := leaseAll(t, c, []string{s1}, 1)
	full, err := executeUnit(c.Job(), held[0].unit)
	if err != nil {
		t.Fatal(err)
	}
	truncated := &Result{Unit: full.Unit, Verdicts: full.Verdicts[:len(full.Verdicts)-1]}
	if resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgResult, Session: s1, Result: truncated}); resp.Type != MsgError {
		t.Fatalf("truncated result accepted: %+v", resp)
	}
	// The same worker picks the unit back up and completes it properly,
	// along with the rest of the round.
	for done := 0; done < 2; done++ {
		h := leaseAll(t, c, []string{s1}, 1)
		if resp := submit(t, c, s1, h[0].unit); resp.Type != MsgAck {
			t.Fatalf("result: got %+v", resp)
		}
	}
	got := awaitCampaign(t, out)
	if CanonVerdicts(got.vs) != CanonVerdicts(serial) {
		t.Errorf("merge after truncated result differs from serial sweep")
	}
	if s := c.Stats(); s.BadFrames != 1 || s.Reassigned != 1 || s.Contained != 0 {
		t.Errorf("stats = %+v, want BadFrames=1 Reassigned=1 Contained=0", s)
	}
}

// TestGarbageFrames drives raw garbage through the byte-level entry
// point: every frame is rejected with an error envelope and counted, and
// none of it perturbs a subsequent clean run.
func TestGarbageFrames(t *testing.T) {
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, fastCfg(2))
	for _, garbage := range [][]byte{
		[]byte("}{ total garbage"),
		[]byte(fmt.Sprintf(`{"v":%d}`, ProtocolVersion)),
		[]byte(fmt.Sprintf(`{"v":%d,"type":"result","session":"w1"}`, ProtocolVersion)),           // result frame without a result
		[]byte(fmt.Sprintf(`{"v":%d,"type":"warp-core-breach","session":"w1"}`, ProtocolVersion)), // unknown type
	} {
		resp, err := Decode(c.Handle(garbage))
		if err != nil {
			t.Fatalf("handler reply undecodable: %v", err)
		}
		if resp.Type != MsgError {
			t.Errorf("garbage %q: got %q reply, want error", garbage, resp.Type)
		}
	}
	// "result without a result" needs a live session to get past the
	// session check and into the payload check.
	s := hello(t, c, "w")
	resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgResult, Session: s})
	if resp.Type != MsgError {
		t.Errorf("nil result accepted: %+v", resp)
	}
	if got := c.Stats().BadFrames; got != 4 {
		t.Errorf("BadFrames = %d, want 4", got)
	}
	if resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgResult, Session: "w999", Result: &Result{}}); resp.Type != MsgError {
		t.Errorf("unknown session accepted: %+v", resp)
	}
}

// TestEmptyMatrix dispatches a zero-cell round: it completes instantly
// with no workers at all.
func TestEmptyMatrix(t *testing.T) {
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, fastCfg(4))
	results, err := c.RunRound(context.Background(), c.newRound(0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("got %d results, want 0", len(results))
	}
	if s := c.Stats(); s.Rounds != 1 || s.Units != 0 {
		t.Errorf("stats = %+v, want Rounds=1 Units=0", s)
	}
}

// TestDrain proves Close ends the fleet: leases answer drain, and a
// drained worker's disconnect is not a loss.
func TestDrain(t *testing.T) {
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, fastCfg(2))
	s := hello(t, c, "w")
	c.Close()
	resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgLease, Session: s})
	if resp.Type != MsgDrain {
		t.Fatalf("lease after Close: got %q, want drain", resp.Type)
	}
	c.LoseSession(s, harden.ToolFault)
	if got := c.Stats().WorkersLost; got != 0 {
		t.Errorf("WorkersLost = %d after draining disconnect, want 0", got)
	}
}
