package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pfi/internal/explore"
	"pfi/internal/harden"
)

// Config tunes a coordinator.
type Config struct {
	// Shards is how many units each round is split into (default 8).
	// More units than workers keeps the pool load-balanced and bounds
	// the blast radius of one lost worker to one small unit.
	Shards int
	// UnitTimeout reaps a leased unit whose worker has gone silent: the
	// unit is reassigned (once) as a harden.Timeout loss. 0 disables the
	// reaper — only connection loss then triggers reassignment, which is
	// enough for stdio workers whose death is an EOF but leaves HTTP
	// workers unmetered.
	UnitTimeout time.Duration
	// LeaseWait bounds how long a lease request blocks server-side before
	// answering wait (long-poll interval; default 250ms).
	LeaseWait time.Duration
	// Log receives progress lines (nil: silent).
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.LeaseWait <= 0 {
		c.LeaseWait = 250 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Stats counts the coordinator's control-plane events. All counters are
// cumulative over the coordinator's lifetime.
type Stats struct {
	// Rounds and Units count dispatched work; UnitsDone completed units
	// (including contained ones).
	Rounds    int `json:"rounds"`
	Units     int `json:"units"`
	UnitsDone int `json:"units_done"`
	// Reassigned counts units put back in the queue after their worker
	// was lost; each unit is reassigned at most once.
	Reassigned int `json:"reassigned"`
	// Contained counts units lost twice and recorded as contained cells
	// instead of reassigned again.
	Contained int `json:"contained"`
	// Stale counts results dropped because their unit was already
	// completed or reassigned elsewhere — the exactly-once guard firing.
	Stale int `json:"stale"`
	// BadFrames counts undecodable, version-mismatched, or structurally
	// invalid frames.
	BadFrames int `json:"bad_frames"`
	// WorkersSeen and WorkersLost count sessions; draining exits are not
	// losses.
	WorkersSeen int `json:"workers_seen"`
	WorkersLost int `json:"workers_lost"`
}

// unit lifecycle states.
const (
	unitPending = iota
	unitLeased
	unitDone
)

// session is one worker's per-connection state.
type session struct {
	id        string
	worker    string
	lost      bool
	leased    map[int]bool // unit IDs currently held
	completed int
	lastSeen  time.Time
}

// round is one dispatched batch of units.
type round struct {
	id      int
	units   []Unit
	byID    map[int]int // unit ID -> position
	state   []int
	owner   []string
	losses  []int
	expiry  []time.Time
	results []*Result
	left    int
	done    chan struct{}
}

// Coordinator is the fleet's single source of truth: it owns the job,
// the work plan, every session, and the merge. One handler core serves
// both transports; all state lives behind one mutex, so completion order
// can never influence what gets merged where.
type Coordinator struct {
	cfg   Config
	job   Job
	start time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[string]*session
	seq      int
	unitSeq  int
	roundSeq int
	round    *round
	draining bool
	stats    Stats
}

// NewCoordinator builds a coordinator for the given job. Use NewCampaign
// or NewFuzz for the job-shaped constructors.
func NewCoordinator(job Job, cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg.withDefaults(), job: job, start: time.Now(), sessions: map[string]*session{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Job returns the coordinator's job description.
func (c *Coordinator) Job() Job { return c.job }

// Stats returns a snapshot of the control-plane counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close drains the fleet: every subsequent lease answers drain, so
// workers exit cleanly, and worker disconnects stop counting as losses.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.draining = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Draining reports whether Close has been called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Handle decodes one raw frame, dispatches it through the handler core,
// and encodes the response — the byte-level entry both transports use.
func (c *Coordinator) Handle(frame []byte) []byte {
	e, err := Decode(frame)
	if err != nil {
		c.mu.Lock()
		c.stats.BadFrames++
		c.mu.Unlock()
		return mustEncode(errEnvelope(err.Error()))
	}
	return mustEncode(c.HandleEnvelope(e))
}

// HandleEnvelope is the transport-agnostic handler core. Every request
// from every worker funnels through here.
func (c *Coordinator) HandleEnvelope(e Envelope) Envelope {
	if e.V != ProtocolVersion {
		c.mu.Lock()
		c.stats.BadFrames++
		c.mu.Unlock()
		return errEnvelope(fmt.Sprintf(
			"fleet: protocol version mismatch: coordinator speaks v%d, peer sent v%d — refusing to merge across versions",
			ProtocolVersion, e.V))
	}
	switch e.Type {
	case MsgHello:
		return c.hello(e)
	case MsgLease:
		return c.lease(e)
	case MsgResult:
		return c.result(e)
	default:
		c.mu.Lock()
		c.stats.BadFrames++
		c.mu.Unlock()
		return errEnvelope(fmt.Sprintf("fleet: unexpected message type %q", e.Type))
	}
}

// hello admits a worker: allocate a session, hand back the job.
func (c *Coordinator) hello(e Envelope) Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	s := &session{id: fmt.Sprintf("w%d", c.seq), worker: e.Worker, leased: map[int]bool{}, lastSeen: time.Now()}
	c.sessions[s.id] = s
	c.stats.WorkersSeen++
	c.cfg.Log("fleet: worker %s (%s) joined", s.id, s.worker)
	job := c.job
	return Envelope{V: ProtocolVersion, Type: MsgJob, Session: s.id, Job: &job}
}

// lease hands the requesting session the next pending unit, long-polling
// up to LeaseWait for one to appear. Draining answers drain; a quiet
// queue answers wait.
func (c *Coordinator) lease(e Envelope) Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[e.Session]
	if s == nil || s.lost {
		return errEnvelope(fmt.Sprintf("fleet: unknown or lost session %q", e.Session))
	}
	s.lastSeen = time.Now()
	deadline := time.Now().Add(c.cfg.LeaseWait)
	for {
		if c.draining {
			return Envelope{V: ProtocolVersion, Type: MsgDrain}
		}
		if r := c.round; r != nil {
			for pos := range r.units {
				if r.state[pos] != unitPending {
					continue
				}
				r.state[pos] = unitLeased
				r.owner[pos] = s.id
				if c.cfg.UnitTimeout > 0 {
					r.expiry[pos] = time.Now().Add(c.cfg.UnitTimeout)
				}
				s.leased[r.units[pos].ID] = true
				u := r.units[pos]
				return Envelope{V: ProtocolVersion, Type: MsgUnit, Unit: &u}
			}
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Envelope{V: ProtocolVersion, Type: MsgWait}
		}
		// cond.Wait with a deadline: arm a broadcast so the wait can't
		// outlive the long-poll window.
		t := time.AfterFunc(remaining, c.cond.Broadcast)
		c.cond.Wait()
		t.Stop()
	}
}

// result merges a completed unit — or drops it as stale if the unit was
// already completed or reassigned away from the sender. A structurally
// invalid result (wrong cell count, out-of-range indices, bad coverage
// words) is treated as losing the unit: reassigned once, contained on
// the second strike, never merged.
func (c *Coordinator) result(e Envelope) Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[e.Session]
	if s == nil {
		return errEnvelope(fmt.Sprintf("fleet: unknown session %q", e.Session))
	}
	s.lastSeen = time.Now()
	if e.Result == nil {
		c.stats.BadFrames++
		return errEnvelope("fleet: result frame carries no result")
	}
	r := c.round
	if r == nil {
		c.stats.Stale++
		return Envelope{V: ProtocolVersion, Type: MsgAck}
	}
	pos, ok := r.byID[e.Result.Unit]
	if !ok || r.state[pos] == unitDone || r.owner[pos] != s.id {
		c.stats.Stale++
		return Envelope{V: ProtocolVersion, Type: MsgAck}
	}
	if err := validateResult(c.job.Kind, r.units[pos], e.Result); err != nil {
		c.stats.BadFrames++
		c.loseUnitLocked(r, pos, harden.ToolFault, fmt.Sprintf("fleet: unit %d: invalid result from %s: %v", e.Result.Unit, s.id, err))
		return errEnvelope(err.Error())
	}
	delete(s.leased, e.Result.Unit)
	s.completed++
	res := *e.Result
	c.completeLocked(r, pos, &res)
	return Envelope{V: ProtocolVersion, Type: MsgAck}
}

// validateResult enforces the merge precondition: exactly one entry per
// cell, in cell order, with in-range coverage words — a truncated or
// garbled result must never reach the merge.
func validateResult(kind string, u Unit, res *Result) error {
	want := u.Hi - u.Lo
	switch kind {
	case JobCampaign:
		if len(res.Verdicts) != want {
			return fmt.Errorf("fleet: unit %d: %d verdicts for %d cells", u.ID, len(res.Verdicts), want)
		}
		for i, v := range res.Verdicts {
			if v.Index != u.Lo+i {
				return fmt.Errorf("fleet: unit %d: verdict %d has index %d, want %d", u.ID, i, v.Index, u.Lo+i)
			}
		}
	case JobFuzz:
		if len(res.Outcomes) != want {
			return fmt.Errorf("fleet: unit %d: %d outcomes for %d cells", u.ID, len(res.Outcomes), want)
		}
		for i, o := range res.Outcomes {
			if o.Index != u.Lo+i {
				return fmt.Errorf("fleet: unit %d: outcome %d has index %d, want %d", u.ID, i, o.Index, u.Lo+i)
			}
			if _, err := covFromWire(o.Cov); err != nil {
				return fmt.Errorf("fleet: unit %d: outcome %d: %w", u.ID, i, err)
			}
		}
	default:
		return fmt.Errorf("fleet: unknown job kind %q", kind)
	}
	return nil
}

// completeLocked records a unit's results and wakes the round waiter
// when the last unit lands.
func (c *Coordinator) completeLocked(r *round, pos int, res *Result) {
	r.results[pos] = res
	r.state[pos] = unitDone
	r.owner[pos] = ""
	r.left--
	c.stats.UnitsDone++
	if r.left == 0 {
		close(r.done)
	}
	c.cond.Broadcast()
}

// LoseSession marks a worker gone — its connection closed, its process
// died — and recovers every unit it was holding. kind classifies the
// loss under the harden taxonomy (ToolFault for a dead connection,
// Timeout for a reaped lease).
func (c *Coordinator) LoseSession(id string, kind harden.Kind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[id]
	if s == nil || s.lost {
		return
	}
	s.lost = true
	if !c.draining {
		c.stats.WorkersLost++
		c.cfg.Log("fleet: worker %s lost (%s)", id, kind)
	}
	if r := c.round; r != nil {
		for pos := range r.units {
			if r.state[pos] == unitLeased && r.owner[pos] == id {
				c.loseUnitLocked(r, pos, kind, fmt.Sprintf("fleet: worker %s lost (%s) holding unit %d", id, kind, r.units[pos].ID))
			}
		}
	}
	c.cond.Broadcast()
}

// loseUnitLocked recovers one lost unit: the first loss puts it back in
// the queue (exactly one reassignment); a second loss records its cells
// as contained so a flapping worker can neither starve nor duplicate a
// cell.
func (c *Coordinator) loseUnitLocked(r *round, pos int, kind harden.Kind, why string) {
	if s := c.sessions[r.owner[pos]]; s != nil {
		delete(s.leased, r.units[pos].ID)
	}
	r.losses[pos]++
	r.expiry[pos] = time.Time{}
	if r.losses[pos] <= 1 {
		r.state[pos] = unitPending
		r.owner[pos] = ""
		c.stats.Reassigned++
		c.cfg.Log("fleet: unit %d lost once (%s); reassigning", r.units[pos].ID, kind)
		c.cond.Broadcast()
		return
	}
	c.stats.Contained++
	c.cfg.Log("fleet: unit %d lost twice; recording cells as contained", r.units[pos].ID)
	c.completeLocked(r, pos, containedResult(c.job, r.units[pos], kind, why))
}

// containedResult synthesizes the verdicts for a unit whose execution
// was lost twice: every cell becomes a contained record under the harden
// taxonomy (campaign) or an exec-error violation (fuzz — machine-
// dependent losses are reported, never emitted, matching how wall-clock
// timeouts degrade elsewhere).
func containedResult(job Job, u Unit, kind harden.Kind, why string) *Result {
	res := &Result{Unit: u.ID}
	if kind != harden.Timeout {
		kind = harden.ToolFault
	}
	for i := u.Lo; i < u.Hi; i++ {
		switch job.Kind {
		case JobCampaign:
			res.Verdicts = append(res.Verdicts, WireVerdict{
				Index:   i,
				Err:     why + " (reassignment exhausted)",
				Outcome: int(kind),
			})
		case JobFuzz:
			res.Outcomes = append(res.Outcomes, WireOutcome{
				Index:    i,
				Schedule: u.Schedules[i-u.Lo],
				Violations: []explore.Violation{{
					Kind:   explore.ViolExecError,
					Detail: why + " (reassignment exhausted)",
				}},
			})
		}
	}
	return res
}

// reapExpired loses every leased unit whose worker has been silent past
// the unit timeout. Called from the round waiter's tick.
func (c *Coordinator) reapExpired() {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.round
	if r == nil || c.cfg.UnitTimeout <= 0 {
		return
	}
	now := time.Now()
	for pos := range r.units {
		if r.state[pos] == unitLeased && !r.expiry[pos].IsZero() && now.After(r.expiry[pos]) {
			c.loseUnitLocked(r, pos, harden.Timeout,
				fmt.Sprintf("fleet: unit %d timed out after %s on %s", r.units[pos].ID, c.cfg.UnitTimeout, r.owner[pos]))
		}
	}
}

// newRound plans one dispatch: spans over n cells, stamped with fresh
// unit IDs. payload fills the per-unit fuzz schedules (nil for campaign
// jobs, whose workers regenerate cells from the spec).
func (c *Coordinator) newRound(n int, payload func(Span) []explore.Schedule) *round {
	spans := Plan(n, c.cfg.Shards)
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &round{
		id:      c.roundSeq,
		byID:    map[int]int{},
		state:   make([]int, len(spans)),
		owner:   make([]string, len(spans)),
		losses:  make([]int, len(spans)),
		expiry:  make([]time.Time, len(spans)),
		results: make([]*Result, len(spans)),
		left:    len(spans),
		done:    make(chan struct{}),
	}
	c.roundSeq++
	for _, sp := range spans {
		u := Unit{ID: c.unitSeq, Round: r.id, Lo: sp.Lo, Hi: sp.Hi}
		c.unitSeq++
		if payload != nil {
			u.Schedules = payload(sp)
		}
		r.byID[u.ID] = len(r.units)
		r.units = append(r.units, u)
	}
	if r.left == 0 {
		close(r.done) // empty matrix: the round is born complete
	}
	c.stats.Rounds++
	c.stats.Units += len(r.units)
	return r
}

// RunRound dispatches one planned round to the fleet and blocks until
// every unit is done (completed or contained), the context is canceled,
// or the coordinator is drained. Results come back in unit order — the
// positions workers finished them in never matter.
func (c *Coordinator) RunRound(ctx context.Context, r *round) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if c.round != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: a round is already active")
	}
	c.round = r
	c.cond.Broadcast()
	c.mu.Unlock()

	tick := time.NewTicker(c.tickInterval())
	defer tick.Stop()
	var err error
loop:
	for {
		select {
		case <-r.done:
			break loop
		case <-ctx.Done():
			err = ctx.Err()
			break loop
		case <-tick.C:
			c.reapExpired()
		}
	}
	c.mu.Lock()
	c.round = nil
	c.cond.Broadcast()
	results := append([]*Result(nil), r.results...)
	c.mu.Unlock()
	return results, err
}

// tickInterval paces the reaper well inside the unit timeout.
func (c *Coordinator) tickInterval() time.Duration {
	if c.cfg.UnitTimeout > 0 {
		if t := c.cfg.UnitTimeout / 4; t >= 10*time.Millisecond {
			return t
		}
		return 10 * time.Millisecond
	}
	return 100 * time.Millisecond
}
