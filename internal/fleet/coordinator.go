package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/explore"
	"pfi/internal/harden"
	"pfi/internal/journal"
)

// Config tunes a coordinator.
type Config struct {
	// Shards is how many units each round is split into (default 8).
	// More units than workers keeps the pool load-balanced and bounds
	// the blast radius of one lost worker to one small unit.
	Shards int
	// UnitTimeout reaps a leased unit whose worker has gone silent: the
	// unit is reassigned (once) as a harden.Timeout loss. 0 disables the
	// reaper — only connection loss then triggers reassignment, which is
	// enough for stdio workers whose death is an EOF but leaves HTTP
	// workers unmetered.
	UnitTimeout time.Duration
	// LeaseWait bounds how long a lease request blocks server-side before
	// answering wait (long-poll interval; default 250ms).
	LeaseWait time.Duration
	// Journal, when non-nil, makes a campaign coordinator crash-safe:
	// every merged cell streams into the write-ahead log, journaled
	// cells are pre-filled (not re-dispatched) on the next RunCampaign
	// against the same log, and each attachment appends an epoch record
	// so reconnecting workers can tell a restarted coordinator from the
	// one they left. Leases are deliberately not persisted — a restarted
	// coordinator re-leases the missing cells, and first-write-wins
	// keeps anything a worker streamed before the crash. Fuzz runs
	// journal explore-side instead (pass explore.Options.Journal to
	// RunFuzz).
	Journal *journal.Log
	// Log receives progress lines (nil: silent).
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.LeaseWait <= 0 {
		c.LeaseWait = 250 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Stats counts the coordinator's control-plane events. All counters are
// cumulative over the coordinator's lifetime.
type Stats struct {
	// Rounds and Units count dispatched work; UnitsDone completed units
	// (including contained ones).
	Rounds    int `json:"rounds"`
	Units     int `json:"units"`
	UnitsDone int `json:"units_done"`
	// Reassigned counts units put back in the queue after their worker
	// was lost; each unit is reassigned at most once.
	Reassigned int `json:"reassigned"`
	// Contained counts units lost twice and recorded as contained cells
	// instead of reassigned again.
	Contained int `json:"contained"`
	// Stale counts results dropped because their unit was already
	// completed or reassigned elsewhere — the exactly-once guard firing.
	Stale int `json:"stale"`
	// Cells counts cells merged from streamed MsgCell frames (duplicate
	// streams of an already-held cell are ignored, not counted).
	Cells int `json:"cells"`
	// BadFrames counts undecodable, version-mismatched, or structurally
	// invalid frames.
	BadFrames int `json:"bad_frames"`
	// WorkersSeen and WorkersLost count sessions; draining exits are not
	// losses.
	WorkersSeen int `json:"workers_seen"`
	WorkersLost int `json:"workers_lost"`
}

// unit lifecycle states.
const (
	unitPending = iota
	unitLeased
	unitDone
)

// session is one worker's per-connection state.
type session struct {
	id        string
	worker    string
	lost      bool
	leased    map[int]bool // unit IDs currently held
	completed int
	lastSeen  time.Time
}

// round is one dispatched batch of units.
type round struct {
	id      int
	n       int // cells in the round's index space
	units   []Unit
	byID    map[int]int // unit ID -> position
	state   []int
	owner   []string
	losses  []int
	expiry  []time.Time
	results []*Result
	left    int
	done    chan struct{}
	// Per-cell partials, indexed by global cell index. Streamed cells,
	// journal-restored cells, and full-result payload entries all land
	// here first-write-wins; a unit completes when its whole [Lo,Hi) is
	// filled. Exactly one slice is used, matching the job kind.
	cellV []*WireVerdict
	cellO []*WireOutcome
}

// Coordinator is the fleet's single source of truth: it owns the job,
// the work plan, every session, and the merge. One handler core serves
// both transports; all state lives behind one mutex, so completion order
// can never influence what gets merged where.
type Coordinator struct {
	cfg   Config
	job   Job
	start time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[string]*session
	seq      int
	unitSeq  int
	roundSeq int
	round    *round
	draining bool
	stats    Stats

	// Journal state (campaign jobs with Config.Journal).
	epoch     int                 // restart count from RecEpoch records (0: no journal)
	restored  map[int]WireVerdict // journaled cells, pre-filled into the next round
	cellNames []string            // case names, for journal records
	jerr      error               // first journal-write failure
	jfail     chan struct{}       // closed when jerr is set; aborts RunRound
}

// NewCoordinator builds a coordinator for the given job. Use NewCampaign
// or NewFuzz for the job-shaped constructors.
func NewCoordinator(job Job, cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg.withDefaults(), job: job, start: time.Now(), sessions: map[string]*session{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Job returns the coordinator's job description.
func (c *Coordinator) Job() Job { return c.job }

// Stats returns a snapshot of the control-plane counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close drains the fleet: every subsequent lease answers drain, so
// workers exit cleanly, and worker disconnects stop counting as losses.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.draining = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Draining reports whether Close has been called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Handle decodes one raw frame, dispatches it through the handler core,
// and encodes the response — the byte-level entry both transports use.
func (c *Coordinator) Handle(frame []byte) []byte {
	e, err := Decode(frame)
	if err != nil {
		c.mu.Lock()
		c.stats.BadFrames++
		c.mu.Unlock()
		return mustEncode(errEnvelope(err.Error()))
	}
	return mustEncode(c.HandleEnvelope(e))
}

// HandleEnvelope is the transport-agnostic handler core. Every request
// from every worker funnels through here.
func (c *Coordinator) HandleEnvelope(e Envelope) Envelope {
	if e.V != ProtocolVersion {
		c.mu.Lock()
		c.stats.BadFrames++
		c.mu.Unlock()
		return errEnvelope(fmt.Sprintf(
			"fleet: protocol version mismatch: coordinator speaks v%d, peer sent v%d — refusing to merge across versions",
			ProtocolVersion, e.V))
	}
	switch e.Type {
	case MsgHello:
		return c.hello(e)
	case MsgLease:
		return c.lease(e)
	case MsgCell:
		return c.cell(e)
	case MsgResult:
		return c.result(e)
	default:
		c.mu.Lock()
		c.stats.BadFrames++
		c.mu.Unlock()
		return errEnvelope(fmt.Sprintf("fleet: unexpected message type %q", e.Type))
	}
}

// hello admits a worker: allocate a session, hand back the job.
func (c *Coordinator) hello(e Envelope) Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	s := &session{id: fmt.Sprintf("w%d", c.seq), worker: e.Worker, leased: map[int]bool{}, lastSeen: time.Now()}
	c.sessions[s.id] = s
	c.stats.WorkersSeen++
	c.cfg.Log("fleet: worker %s (%s) joined", s.id, s.worker)
	job := c.job
	return Envelope{V: ProtocolVersion, Type: MsgJob, Session: s.id, Epoch: c.epoch, Job: &job}
}

// lease hands the requesting session the next pending unit, long-polling
// up to LeaseWait for one to appear. Draining answers drain; a quiet
// queue answers wait.
func (c *Coordinator) lease(e Envelope) Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[e.Session]
	if s == nil || s.lost {
		return errEnvelope(fmt.Sprintf("fleet: unknown or lost session %q", e.Session))
	}
	s.lastSeen = time.Now()
	deadline := time.Now().Add(c.cfg.LeaseWait)
	for {
		if c.draining {
			return Envelope{V: ProtocolVersion, Type: MsgDrain}
		}
		if r := c.round; r != nil {
			for pos := range r.units {
				if r.state[pos] != unitPending {
					continue
				}
				r.state[pos] = unitLeased
				r.owner[pos] = s.id
				if c.cfg.UnitTimeout > 0 {
					r.expiry[pos] = time.Now().Add(c.cfg.UnitTimeout)
				}
				s.leased[r.units[pos].ID] = true
				u := r.units[pos]
				return Envelope{V: ProtocolVersion, Type: MsgUnit, Unit: &u}
			}
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Envelope{V: ProtocolVersion, Type: MsgWait}
		}
		// cond.Wait with a deadline: arm a broadcast so the wait can't
		// outlive the long-poll window.
		t := time.AfterFunc(remaining, c.cond.Broadcast)
		c.cond.Wait()
		t.Stop()
	}
}

// cell merges one streamed cell of a leased unit — or drops it as stale
// if the unit moved on (completed, or reassigned away from the sender).
// A structurally invalid cell is treated like an invalid result: the
// unit is lost, never merged.
func (c *Coordinator) cell(e Envelope) Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[e.Session]
	if s == nil {
		return errEnvelope(fmt.Sprintf("fleet: unknown session %q", e.Session))
	}
	s.lastSeen = time.Now()
	if e.Cell == nil {
		c.stats.BadFrames++
		return errEnvelope("fleet: cell frame carries no cell")
	}
	r := c.round
	if r == nil {
		c.stats.Stale++
		return Envelope{V: ProtocolVersion, Type: MsgAck}
	}
	pos, ok := r.byID[e.Cell.Unit]
	if !ok || r.state[pos] == unitDone || r.owner[pos] != s.id {
		c.stats.Stale++
		return Envelope{V: ProtocolVersion, Type: MsgAck}
	}
	if err := c.mergeCellLocked(r, r.units[pos], *e.Cell); err != nil {
		c.stats.BadFrames++
		c.loseUnitLocked(r, pos, harden.ToolFault, fmt.Sprintf("fleet: unit %d: invalid cell from %s: %v", e.Cell.Unit, s.id, err))
		return errEnvelope(err.Error())
	}
	return Envelope{V: ProtocolVersion, Type: MsgAck}
}

// result completes a unit whose cells are already held — streamed, pre-
// filled from the journal, or carried in this frame's payload (a v1-
// style full result) — or drops it as stale if the unit was already
// completed or reassigned away from the sender. A structurally invalid
// or incomplete result (out-of-range indices, bad coverage words, cells
// still missing) is treated as losing the unit: reassigned once,
// contained on the second strike, never merged.
func (c *Coordinator) result(e Envelope) Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[e.Session]
	if s == nil {
		return errEnvelope(fmt.Sprintf("fleet: unknown session %q", e.Session))
	}
	s.lastSeen = time.Now()
	if e.Result == nil {
		c.stats.BadFrames++
		return errEnvelope("fleet: result frame carries no result")
	}
	r := c.round
	if r == nil {
		c.stats.Stale++
		return Envelope{V: ProtocolVersion, Type: MsgAck}
	}
	pos, ok := r.byID[e.Result.Unit]
	if !ok || r.state[pos] == unitDone || r.owner[pos] != s.id {
		c.stats.Stale++
		return Envelope{V: ProtocolVersion, Type: MsgAck}
	}
	u := r.units[pos]
	if err := c.foldResultLocked(r, u, e.Result); err != nil {
		c.stats.BadFrames++
		c.loseUnitLocked(r, pos, harden.ToolFault, fmt.Sprintf("fleet: unit %d: invalid result from %s: %v", e.Result.Unit, s.id, err))
		return errEnvelope(err.Error())
	}
	delete(s.leased, e.Result.Unit)
	s.completed++
	c.completeLocked(r, pos, c.assembleLocked(r, u))
	return Envelope{V: ProtocolVersion, Type: MsgAck}
}

// foldResultLocked validates a result's payload entries, folds them into
// the round's cell partials, and enforces the merge precondition: every
// cell of the unit held, with in-range indices and coverage words. The
// payload is validated in full before anything is folded, so a garbled
// result never reaches the merge even partially.
func (c *Coordinator) foldResultLocked(r *round, u Unit, res *Result) error {
	for _, v := range res.Verdicts {
		v := v
		if err := c.checkCellLocked(r, u, WireCell{Unit: u.ID, Verdict: &v}); err != nil {
			return err
		}
	}
	for _, o := range res.Outcomes {
		o := o
		if err := c.checkCellLocked(r, u, WireCell{Unit: u.ID, Outcome: &o}); err != nil {
			return err
		}
	}
	for _, v := range res.Verdicts {
		v := v
		c.fillCellLocked(r, WireCell{Unit: u.ID, Verdict: &v}, false)
	}
	for _, o := range res.Outcomes {
		o := o
		c.fillCellLocked(r, WireCell{Unit: u.ID, Outcome: &o}, false)
	}
	for i := u.Lo; i < u.Hi; i++ {
		if (c.job.Kind == JobCampaign && r.cellV[i] == nil) ||
			(c.job.Kind == JobFuzz && r.cellO[i] == nil) {
			return fmt.Errorf("fleet: unit %d: cell %d neither streamed nor carried", u.ID, i)
		}
	}
	return nil
}

// checkCellLocked validates one cell payload against the unit and job
// kind without merging it.
func (c *Coordinator) checkCellLocked(r *round, u Unit, cell WireCell) error {
	switch c.job.Kind {
	case JobCampaign:
		if cell.Verdict == nil || cell.Outcome != nil {
			return fmt.Errorf("fleet: unit %d: campaign cell without a verdict", u.ID)
		}
		if i := cell.Verdict.Index; i < u.Lo || i >= u.Hi {
			return fmt.Errorf("fleet: unit %d: verdict index %d outside [%d,%d)", u.ID, i, u.Lo, u.Hi)
		}
	case JobFuzz:
		if cell.Outcome == nil || cell.Verdict != nil {
			return fmt.Errorf("fleet: unit %d: fuzz cell without an outcome", u.ID)
		}
		if i := cell.Outcome.Index; i < u.Lo || i >= u.Hi {
			return fmt.Errorf("fleet: unit %d: outcome index %d outside [%d,%d)", u.ID, i, u.Lo, u.Hi)
		}
		if _, err := covFromWire(cell.Outcome.Cov); err != nil {
			return fmt.Errorf("fleet: unit %d: outcome %d: %w", u.ID, cell.Outcome.Index, err)
		}
	default:
		return fmt.Errorf("fleet: unknown job kind %q", c.job.Kind)
	}
	return nil
}

// mergeCellLocked validates and merges one streamed cell.
func (c *Coordinator) mergeCellLocked(r *round, u Unit, cell WireCell) error {
	if err := c.checkCellLocked(r, u, cell); err != nil {
		return err
	}
	c.fillCellLocked(r, cell, true)
	return nil
}

// fillCellLocked stores a validated cell first-write-wins and journals
// newly filled campaign cells. Duplicates (a reassigned worker re-
// earning a cell the first owner already streamed) are ignored — cells
// are pure functions of their case, so any duplicate is identical.
func (c *Coordinator) fillCellLocked(r *round, cell WireCell, streamed bool) {
	switch {
	case cell.Verdict != nil:
		i := cell.Verdict.Index
		if r.cellV[i] != nil {
			return
		}
		v := *cell.Verdict
		r.cellV[i] = &v
		if streamed {
			c.stats.Cells++
		}
		c.journalCellLocked(i, v)
	case cell.Outcome != nil:
		i := cell.Outcome.Index
		if r.cellO[i] != nil {
			return
		}
		o := *cell.Outcome
		r.cellO[i] = &o
		if streamed {
			c.stats.Cells++
		}
	}
}

// assembleLocked builds a unit's merged Result from the round's cell
// partials; every cell is guaranteed filled by foldResultLocked or the
// containment path.
func (c *Coordinator) assembleLocked(r *round, u Unit) *Result {
	res := &Result{Unit: u.ID}
	for i := u.Lo; i < u.Hi; i++ {
		switch c.job.Kind {
		case JobCampaign:
			res.Verdicts = append(res.Verdicts, *r.cellV[i])
		case JobFuzz:
			res.Outcomes = append(res.Outcomes, *r.cellO[i])
		}
	}
	return res
}

// journalCellLocked streams one merged campaign cell into the write-
// ahead log. A write failure latches jerr and aborts the running round —
// completed work is never silently unjournaled.
func (c *Coordinator) journalCellLocked(i int, v WireVerdict) {
	if c.cfg.Journal == nil || c.jerr != nil || c.job.Kind != JobCampaign || i >= len(c.cellNames) {
		return
	}
	jv := campaign.JournalVerdict{
		Index: i, Name: c.cellNames[i],
		OK: v.OK, Note: v.Note, Err: v.Err,
		Outcome: v.Outcome, Retries: v.Retries, ElapsedUS: v.ElapsedUS,
	}
	if err := c.cfg.Journal.Append(campaign.RecVerdict, jv); err != nil {
		c.jerr = err
		if c.jfail != nil {
			close(c.jfail)
		}
	}
}

// completeLocked records a unit's results and wakes the round waiter
// when the last unit lands.
func (c *Coordinator) completeLocked(r *round, pos int, res *Result) {
	r.results[pos] = res
	r.state[pos] = unitDone
	r.owner[pos] = ""
	r.left--
	c.stats.UnitsDone++
	if r.left == 0 {
		close(r.done)
	}
	c.cond.Broadcast()
}

// LoseSession marks a worker gone — its connection closed, its process
// died — and recovers every unit it was holding. kind classifies the
// loss under the harden taxonomy (ToolFault for a dead connection,
// Timeout for a reaped lease).
func (c *Coordinator) LoseSession(id string, kind harden.Kind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.sessions[id]
	if s == nil || s.lost {
		return
	}
	s.lost = true
	if !c.draining {
		c.stats.WorkersLost++
		c.cfg.Log("fleet: worker %s lost (%s)", id, kind)
	}
	if r := c.round; r != nil {
		for pos := range r.units {
			if r.state[pos] == unitLeased && r.owner[pos] == id {
				c.loseUnitLocked(r, pos, kind, fmt.Sprintf("fleet: worker %s lost (%s) holding unit %d", id, kind, r.units[pos].ID))
			}
		}
	}
	c.cond.Broadcast()
}

// loseUnitLocked recovers one lost unit: the first loss puts it back in
// the queue (exactly one reassignment); a second loss records its cells
// as contained so a flapping worker can neither starve nor duplicate a
// cell.
func (c *Coordinator) loseUnitLocked(r *round, pos int, kind harden.Kind, why string) {
	if s := c.sessions[r.owner[pos]]; s != nil {
		delete(s.leased, r.units[pos].ID)
	}
	r.losses[pos]++
	r.expiry[pos] = time.Time{}
	if r.losses[pos] <= 1 {
		r.state[pos] = unitPending
		r.owner[pos] = ""
		c.stats.Reassigned++
		c.cfg.Log("fleet: unit %d lost once (%s); reassigning", r.units[pos].ID, kind)
		c.cond.Broadcast()
		return
	}
	c.stats.Contained++
	c.cfg.Log("fleet: unit %d lost twice; recording missing cells as contained", r.units[pos].ID)
	c.containMissingLocked(r, r.units[pos], kind, why)
	c.completeLocked(r, pos, c.assembleLocked(r, r.units[pos]))
}

// containMissingLocked synthesizes the cells a twice-lost unit never
// streamed: each missing cell becomes a contained record under the
// harden taxonomy (campaign) or an exec-error violation (fuzz —
// machine-dependent losses are reported, never emitted, matching how
// wall-clock timeouts degrade elsewhere). Cells the lost workers did
// stream are kept — they are real completed work.
func (c *Coordinator) containMissingLocked(r *round, u Unit, kind harden.Kind, why string) {
	if kind != harden.Timeout {
		kind = harden.ToolFault
	}
	for i := u.Lo; i < u.Hi; i++ {
		switch c.job.Kind {
		case JobCampaign:
			if r.cellV[i] != nil {
				continue
			}
			c.fillCellLocked(r, WireCell{Unit: u.ID, Verdict: &WireVerdict{
				Index:   i,
				Err:     why + " (reassignment exhausted)",
				Outcome: int(kind),
			}}, false)
		case JobFuzz:
			if r.cellO[i] != nil {
				continue
			}
			c.fillCellLocked(r, WireCell{Unit: u.ID, Outcome: &WireOutcome{
				Index:    i,
				Schedule: u.Schedules[i-u.Lo],
				Violations: []explore.Violation{{
					Kind:   explore.ViolExecError,
					Detail: why + " (reassignment exhausted)",
				}},
			}}, false)
		}
	}
}

// reapExpired loses every leased unit whose worker has been silent past
// the unit timeout. Called from the round waiter's tick.
func (c *Coordinator) reapExpired() {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.round
	if r == nil || c.cfg.UnitTimeout <= 0 {
		return
	}
	now := time.Now()
	for pos := range r.units {
		if r.state[pos] == unitLeased && !r.expiry[pos].IsZero() && now.After(r.expiry[pos]) {
			c.loseUnitLocked(r, pos, harden.Timeout,
				fmt.Sprintf("fleet: unit %d timed out after %s on %s", r.units[pos].ID, c.cfg.UnitTimeout, r.owner[pos]))
		}
	}
}

// newRound plans one dispatch: spans over n cells, stamped with fresh
// unit IDs. payload fills the per-unit fuzz schedules (nil for campaign
// jobs, whose workers regenerate cells from the spec).
func (c *Coordinator) newRound(n int, payload func(Span) []explore.Schedule) *round {
	spans := Plan(n, c.cfg.Shards)
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &round{
		id:      c.roundSeq,
		n:       n,
		byID:    map[int]int{},
		state:   make([]int, len(spans)),
		owner:   make([]string, len(spans)),
		losses:  make([]int, len(spans)),
		expiry:  make([]time.Time, len(spans)),
		results: make([]*Result, len(spans)),
		left:    len(spans),
		done:    make(chan struct{}),
		cellV:   make([]*WireVerdict, n),
		cellO:   make([]*WireOutcome, n),
	}
	c.roundSeq++
	for _, sp := range spans {
		u := Unit{ID: c.unitSeq, Round: r.id, Lo: sp.Lo, Hi: sp.Hi}
		c.unitSeq++
		if payload != nil {
			u.Schedules = payload(sp)
		}
		r.byID[u.ID] = len(r.units)
		r.units = append(r.units, u)
	}
	if len(spans) == 0 {
		close(r.done) // empty matrix: the round is born complete
	}
	c.stats.Rounds++
	c.stats.Units += len(r.units)

	// Resume: pre-fill journaled cells, and complete (without leasing)
	// every unit whose whole span the journal already holds. Partially
	// journaled units still dispatch — the worker re-earns the gap and
	// first-write-wins keeps the restored cells.
	if len(c.restored) > 0 {
		for i, wv := range c.restored {
			if i < n && r.cellV[i] == nil {
				v := wv
				r.cellV[i] = &v
			}
		}
		for pos, u := range r.units {
			full := true
			for i := u.Lo; i < u.Hi; i++ {
				if r.cellV[i] == nil {
					full = false
					break
				}
			}
			if full {
				c.cfg.Log("fleet: unit %d restored from journal", u.ID)
				c.completeLocked(r, pos, c.assembleLocked(r, u))
			}
		}
	}
	return r
}

// RunRound dispatches one planned round to the fleet and blocks until
// every unit is done (completed or contained), the context is canceled,
// or the coordinator is drained. Results come back in unit order — the
// positions workers finished them in never matter.
func (c *Coordinator) RunRound(ctx context.Context, r *round) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if c.round != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: a round is already active")
	}
	c.round = r
	c.cond.Broadcast()
	c.mu.Unlock()

	tick := time.NewTicker(c.tickInterval())
	defer tick.Stop()
	c.mu.Lock()
	jfail := c.jfail
	c.mu.Unlock()
	var err error
loop:
	for {
		select {
		case <-r.done:
			break loop
		case <-ctx.Done():
			err = ctx.Err()
			break loop
		case <-jfail: // nil when no journal; never fires then
			break loop
		case <-tick.C:
			c.reapExpired()
		}
	}
	c.mu.Lock()
	c.round = nil
	c.cond.Broadcast()
	if c.jerr != nil {
		err = c.jerr // losing the crash-safety log outranks a cancel
	}
	results := append([]*Result(nil), r.results...)
	c.mu.Unlock()
	return results, err
}

// epochRecord is the payload of a RecEpoch journal record: one per
// coordinator attachment, so epoch = how many coordinators have owned
// this journal.
type epochRecord struct {
	Epoch int `json:"epoch"`
}

// Epoch reports the coordinator's journal epoch: how many coordinators
// (this one included) have attached to its journal. 0 when no journal
// is attached.
func (c *Coordinator) Epoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// adoptJournal counts prior epochs in the log, appends this
// coordinator's own epoch record, and arms the journal-failure abort.
// Epoch records ride in the same log as the work records; both the
// campaign and explore replay paths skip record types they do not own.
func (c *Coordinator) adoptJournal(l *journal.Log) error {
	epoch := 1
	for _, rec := range l.Records() {
		if rec.Type == campaign.RecEpoch {
			epoch++
		}
	}
	if err := l.Append(campaign.RecEpoch, epochRecord{Epoch: epoch}); err != nil {
		return err
	}
	c.mu.Lock()
	c.epoch = epoch
	if c.jfail == nil {
		c.jfail = make(chan struct{})
	}
	c.mu.Unlock()
	c.cfg.Log("fleet: journal %s adopted (epoch %d)", l.Path(), epoch)
	return nil
}

// attachCampaignJournal readies Config.Journal for a campaign run:
// validate-or-stamp the sweep metadata, load the journaled cells for
// round pre-fill, and bump the epoch. Returns how many cells resume
// from the journal.
func (c *Coordinator) attachCampaignJournal(cases []campaign.Case) (int, error) {
	l := c.cfg.Journal
	if l == nil {
		return 0, nil
	}
	restored, err := campaign.PrepareJournal(l, cases)
	if err != nil {
		return 0, err
	}
	if err := c.adoptJournal(l); err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.restored = make(map[int]WireVerdict, len(restored))
	for i, jv := range restored {
		c.restored[i] = WireVerdict{
			Index: jv.Index, OK: jv.OK, Note: jv.Note, Err: jv.Err,
			Outcome: jv.Outcome, Retries: jv.Retries, ElapsedUS: jv.ElapsedUS,
		}
	}
	c.cellNames = make([]string, len(cases))
	for i, cs := range cases {
		c.cellNames[i] = cs.Name
	}
	c.mu.Unlock()
	return len(restored), nil
}

// tickInterval paces the reaper well inside the unit timeout.
func (c *Coordinator) tickInterval() time.Duration {
	if c.cfg.UnitTimeout > 0 {
		if t := c.cfg.UnitTimeout / 4; t >= 10*time.Millisecond {
			return t
		}
		return 10 * time.Millisecond
	}
	return 100 * time.Millisecond
}
