package fleet

import (
	"fmt"
	"sync"

	"pfi/internal/journal"
)

// Queue record types. The queue keeps its own journal — one log per
// queue, separate from the per-campaign cell journals its entries point
// at — so a restarted coordinator process recovers the whole backlog:
// which campaigns were queued, which were leased in flight, and which
// finished.
const (
	// RecQueueJob is one enqueued campaign: the full job payload plus
	// the path of its cell journal.
	RecQueueJob = "queue-job"
	// RecQueueLease marks a job dispatched (in flight). A job leased but
	// never completed is still pending after a restart — Pending surfaces
	// it first, and its cell journal carries whatever cells the crashed
	// run already banked.
	RecQueueLease = "queue-lease"
	// RecQueueDone marks a job completed.
	RecQueueDone = "queue-done"
)

// QueuedJob is one durable queue entry.
type QueuedJob struct {
	// ID is unique within the queue's lifetime (monotonic).
	ID int `json:"id"`
	// Job is the full fleet job: spec, scenario, harden policy.
	Job Job `json:"job"`
	// JournalPath is the job's own cell journal, handed to the
	// coordinator (Config.Journal) that runs it, so each campaign's
	// resume state is isolated from the queue's.
	JournalPath string `json:"journal_path,omitempty"`
	// Leased reports the job was dispatched at least once (an in-flight
	// lease recovered after a restart resumes, not restarts).
	Leased bool `json:"-"`
}

// queueRef is the payload of lease/done records.
type queueRef struct {
	ID int `json:"id"`
}

// Queue is a durable multi-campaign work queue: jobs enqueue as journal
// records, leases and completions append markers, and OpenQueue replays
// the log so a killed coordinator process picks up exactly where it
// died. All methods are safe for concurrent use.
type Queue struct {
	mu   sync.Mutex
	log  *journal.Log
	jobs []QueuedJob // pending, in enqueue order (leased-but-unfinished included)
	done int         // completed jobs replayed or marked
	seq  int
}

// OpenQueue replays a queue journal. Unknown record types are skipped,
// so a queue log tolerates future markers.
func OpenQueue(l *journal.Log) (*Queue, error) {
	q := &Queue{log: l}
	byID := map[int]int{} // job ID -> index in q.jobs
	for _, rec := range l.Records() {
		switch rec.Type {
		case RecQueueJob:
			var qj QueuedJob
			if err := journal.Decode(rec, RecQueueJob, &qj); err != nil {
				return nil, err
			}
			if _, dup := byID[qj.ID]; dup {
				return nil, fmt.Errorf("fleet: queue %s enqueues job %d twice", l.Path(), qj.ID)
			}
			byID[qj.ID] = len(q.jobs)
			q.jobs = append(q.jobs, qj)
			if qj.ID >= q.seq {
				q.seq = qj.ID + 1
			}
		case RecQueueLease:
			var ref queueRef
			if err := journal.Decode(rec, RecQueueLease, &ref); err != nil {
				return nil, err
			}
			if i, ok := byID[ref.ID]; ok {
				q.jobs[i].Leased = true
			}
		case RecQueueDone:
			var ref queueRef
			if err := journal.Decode(rec, RecQueueDone, &ref); err != nil {
				return nil, err
			}
			if i, ok := byID[ref.ID]; ok {
				q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
				delete(byID, ref.ID)
				for id, j := range byID {
					if j > i {
						byID[id] = j - 1
					}
				}
				q.done++
			}
		}
	}
	return q, nil
}

// Add durably enqueues a job and returns its queue entry.
func (q *Queue) Add(job Job, journalPath string) (QueuedJob, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	qj := QueuedJob{ID: q.seq, Job: job, JournalPath: journalPath}
	if err := q.log.Append(RecQueueJob, qj); err != nil {
		return QueuedJob{}, err
	}
	q.seq++
	q.jobs = append(q.jobs, qj)
	return qj, nil
}

// Lease durably marks a job dispatched and returns it. In-flight jobs
// (leased before a crash, never completed) are preferred over fresh
// ones so interrupted campaigns finish first; among each class, enqueue
// order wins. ok is false when the queue is empty.
func (q *Queue) Lease() (QueuedJob, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	pick := -1
	for i := range q.jobs {
		if q.jobs[i].Leased {
			pick = i
			break
		}
	}
	if pick < 0 && len(q.jobs) > 0 {
		pick = 0
	}
	if pick < 0 {
		return QueuedJob{}, false, nil
	}
	if !q.jobs[pick].Leased {
		if err := q.log.Append(RecQueueLease, queueRef{ID: q.jobs[pick].ID}); err != nil {
			return QueuedJob{}, false, err
		}
		q.jobs[pick].Leased = true
	}
	return q.jobs[pick], true, nil
}

// Complete durably marks a job finished and drops it from the queue.
func (q *Queue) Complete(id int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.jobs {
		if q.jobs[i].ID == id {
			if err := q.log.Append(RecQueueDone, queueRef{ID: id}); err != nil {
				return err
			}
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			q.done++
			return q.log.Sync()
		}
	}
	return fmt.Errorf("fleet: queue has no pending job %d", id)
}

// Pending snapshots the outstanding jobs: in-flight ones first, then
// queued ones, each in enqueue order.
func (q *Queue) Pending() []QueuedJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QueuedJob, 0, len(q.jobs))
	for _, qj := range q.jobs {
		if qj.Leased {
			out = append(out, qj)
		}
	}
	for _, qj := range q.jobs {
		if !qj.Leased {
			out = append(out, qj)
		}
	}
	return out
}

// Done reports how many jobs have completed over the queue's lifetime
// (including completions replayed from the journal).
func (q *Queue) Done() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.done
}
