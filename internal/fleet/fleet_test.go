package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/core"
	"pfi/internal/explore"
	"pfi/internal/harden"
	"pfi/internal/message"
	"pfi/internal/simtime"
	"pfi/internal/stack"
)

// envTestWorker re-executes this test binary as a fleet worker: TestMain
// sees the variable before any test runs and becomes a stdio worker
// instead. The determinism battery thereby runs real separate processes
// — the same binary, the same registered scenario — exactly like a
// production -spawn-workers fleet.
const envTestWorker = "PFI_FLEET_TEST_WORKER"

func TestMain(m *testing.M) {
	RegisterScenario("sweep", sweepScenario)
	if os.Getenv(envTestWorker) == "1" {
		if err := ServeStdio("test-worker"); err != nil {
			fmt.Fprintln(os.Stderr, "fleet test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// typedStub recognizes a message's payload string as its type, so sweep
// scenarios can steer generated scripts without a real protocol.
type typedStub struct{}

func (typedStub) Protocol() string { return "typed" }
func (typedStub) Recognize(m *message.Message) (core.Info, error) {
	return core.Info{Type: string(m.Bytes())}, nil
}
func (typedStub) Generate(typ string, fields map[string]string) (*message.Message, error) {
	return message.NewString(typ), nil
}

// sweepScenario is a deterministic single-node simulation: one PFI
// layer, a fixed message load in both directions, and a note summarizing
// exactly what traffic survived the fault. Being a pure function of the
// case, it must produce identical verdicts in any process on any
// machine — the property the fleet battery leans on.
func sweepScenario(m *harden.Monitor, c campaign.Case) (bool, string, error) {
	env := &stack.Env{Sched: simtime.NewScheduler(), Node: "n1"}
	l := core.NewLayer(env, core.WithStub(typedStub{}))
	m.Attach(env.Sched, nil, func() int { return l.SendFilter().Stats().Injected + l.ReceiveFilter().Stats().Injected })
	stk := stack.New(env, l)
	var sent, delivered int
	stk.OnTransmit(func(m *message.Message) error { sent++; return nil })
	stk.OnDeliver(func(m *message.Message) error { delivered++; return nil })
	if err := c.Apply(l); err != nil {
		return false, "", err
	}
	types := []string{"DATA", "ACK", "PING"}
	for i := 0; i < 60; i++ {
		typ := types[i%len(types)]
		if err := stk.Send(message.NewString(typ)); err != nil {
			return false, "", err
		}
		if err := stk.Deliver(message.NewString(typ)); err != nil {
			return false, "", err
		}
	}
	env.Sched.RunFor(simtime.Duration(10 * time.Second)) // flush delayed forwards
	return sent+delivered > 0, fmt.Sprintf("sent=%d delivered=%d", sent, delivered), nil
}

// sweepSpec generates a 36-cell matrix (3 types x 6 faults x 2
// directions) of the typed protocol.
var sweepSpec = campaign.Spec{
	Protocol: "typed",
	Types:    []string{"DATA", "ACK", "PING"},
}

// spawnSelf forks n copies of this test binary as stdio fleet workers.
func spawnSelf(t *testing.T, c *Coordinator, n int, extraEnv ...string) *Pool {
	t.Helper()
	pool, err := c.SpawnWorkers(n, []string{os.Args[0]}, func(i int) []string {
		return append([]string{envTestWorker + "=1"}, extraEnv...)
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// serialSweep is the single-process baseline every fleet run must match.
func serialSweep(t *testing.T) []campaign.Verdict {
	t.Helper()
	vs, _, err := campaign.Run(sweepSpec, sweepScenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 36 {
		t.Fatalf("serial sweep has %d verdicts, want 36", len(vs))
	}
	return vs
}

// TestFleetMatchesRunParallel is the determinism battery's campaign leg:
// at 1, 2, and 4 spawned worker processes the merged verdict stream is
// byte-identical (CanonVerdicts) to the single-process sweep, with no
// losses and every unit merged exactly once.
func TestFleetMatchesRunParallel(t *testing.T) {
	want := CanonVerdicts(serialSweep(t))
	parallel, _, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := CanonVerdicts(parallel); got != want {
		t.Fatalf("RunParallel disagrees with serial Run — fix campaign before blaming fleet:\n%s\nvs\n%s", got, want)
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 9})
			pool := spawnSelf(t, c, workers)
			vs, stats, err := c.RunCampaign(context.Background())
			c.Close()
			pool.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if got := CanonVerdicts(vs); got != want {
				t.Errorf("fleet sweep differs from single-process sweep:\nfleet:\n%s\nserial:\n%s", got, want)
			}
			if stats.Cases != 36 || stats.Passed+stats.Failed+stats.Errored != 36 {
				t.Errorf("stats don't add up: %+v", stats)
			}
			s := c.Stats()
			if s.Units != 9 || s.UnitsDone != 9 || s.Reassigned != 0 || s.Contained != 0 || s.Stale != 0 || s.BadFrames != 0 {
				t.Errorf("control-plane stats = %+v, want 9 clean units", s)
			}
			if s.WorkersSeen != workers {
				t.Errorf("WorkersSeen = %d, want %d", s.WorkersSeen, workers)
			}
		})
	}
}

// emittedFiles reads every file under dir keyed by relative path — the
// byte-identical comparison for fuzz repro emission.
func emittedFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func fuzzOpts(outDir string) explore.Options {
	budget, batch := 120, 16
	if raceDetectorEnabled {
		budget, batch = 32, 8
	}
	return explore.Options{Seed: 3, Budget: budget, BatchSize: batch, OutDir: outDir, Snapshot: true}
}

// TestFleetFuzzMatchesSingleProcess is the determinism battery's fuzz
// leg: at 1, 2, and 4 spawned worker processes the exploration report —
// fingerprint, corpus, coverage, findings — and every emitted repro byte
// are identical to single-process explore.Fuzz with the same seed
// (which is itself snapshot- and worker-invariant).
func TestFleetFuzzMatchesSingleProcess(t *testing.T) {
	wantDir := t.TempDir()
	want, err := explore.Fuzz(fuzzOpts(wantDir))
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := emittedFiles(t, wantDir)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			c := NewFuzz("", WireHarden{}, Config{Shards: 4})
			pool := spawnSelf(t, c, workers)
			got, err := c.RunFuzz(fuzzOpts(dir))
			c.Close()
			pool.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if got.Fingerprint != want.Fingerprint {
				t.Errorf("fingerprint %s, want %s", got.Fingerprint, want.Fingerprint)
			}
			if got.Runs != want.Runs || got.Generations != want.Generations ||
				got.CorpusSize != want.CorpusSize || got.CoverageBits != want.CoverageBits {
				t.Errorf("report drifted: got runs=%d gens=%d corpus=%d bits=%d, want runs=%d gens=%d corpus=%d bits=%d",
					got.Runs, got.Generations, got.CorpusSize, got.CoverageBits,
					want.Runs, want.Generations, want.CorpusSize, want.CoverageBits)
			}
			if len(got.Findings) != len(want.Findings) {
				t.Fatalf("got %d findings, want %d", len(got.Findings), len(want.Findings))
			}
			for i := range got.Findings {
				g, w := got.Findings[i].Violation, want.Findings[i].Violation
				if g != w {
					t.Errorf("finding %d: %+v, want %+v", i, g, w)
				}
			}
			gotFiles := emittedFiles(t, dir)
			if len(gotFiles) != len(wantFiles) {
				t.Fatalf("emitted %d files, want %d", len(gotFiles), len(wantFiles))
			}
			for rel, data := range wantFiles {
				if gotFiles[rel] != data {
					t.Errorf("emitted %s differs from single-process bytes", rel)
				}
			}
			if s := c.Stats(); s.Reassigned != 0 || s.Contained != 0 || s.BadFrames != 0 {
				t.Errorf("control-plane stats = %+v, want clean", s)
			}
		})
	}
}

// waitStats polls the coordinator until cond holds or the deadline hits.
func waitStats(t *testing.T, c *Coordinator, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond(c.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats = %+v", what, c.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetSurvivesWorkerKill kill -9s a worker that is holding a lease:
// the unit it died with is reassigned exactly once to a healthy worker
// and the merged sweep is byte-identical to a clean run.
func TestFleetSurvivesWorkerKill(t *testing.T) {
	want := CanonVerdicts(serialSweep(t))
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 12, LeaseWait: 50 * time.Millisecond})
	out := startCampaign(c)
	victim := spawnSelf(t, c, 1, EnvDieOnLease+"=1")
	// The victim joins, leases its first unit, and SIGKILLs itself; the
	// coordinator sees a dead connection with a lease outstanding.
	waitStats(t, c, "victim loss", func(s Stats) bool { return s.WorkersLost >= 1 })
	healthy := spawnSelf(t, c, 1)
	got := awaitCampaign(t, out)
	c.Close()
	healthy.Wait()
	victim.Wait() // SIGKILLed: exits non-zero, which is the point
	if CanonVerdicts(got.vs) != want {
		t.Errorf("sweep after worker kill differs from clean run")
	}
	s := c.Stats()
	if s.WorkersLost != 1 || s.Reassigned != 1 || s.Contained != 0 {
		t.Errorf("stats = %+v, want WorkersLost=1 Reassigned=1 Contained=0", s)
	}
	if s.UnitsDone != 12 {
		t.Errorf("UnitsDone = %d, want 12", s.UnitsDone)
	}
}

// TestFleetSurvivesWorkerStall stalls a worker past the unit timeout
// while it holds a lease: the lease reaper reassigns the unit (exactly
// once, as a Timeout loss) and the merged sweep is byte-identical to a
// clean run. The stalled process stays alive the whole time — silence,
// not death, is what is being recovered from.
func TestFleetSurvivesWorkerStall(t *testing.T) {
	want := CanonVerdicts(serialSweep(t))
	unitTimeout := 500 * time.Millisecond
	if raceDetectorEnabled {
		unitTimeout = 2 * time.Second
	}
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 6, UnitTimeout: unitTimeout, LeaseWait: 20 * time.Millisecond})
	out := startCampaign(c)
	stalled := spawnSelf(t, c, 1, EnvStallOnLease+"=1")
	// The stalled worker leases a unit and goes silent; only the reaper
	// can take it back.
	waitStats(t, c, "lease reap", func(s Stats) bool { return s.Reassigned >= 1 })
	healthy := spawnSelf(t, c, 1)
	got := awaitCampaign(t, out)
	c.Close()
	healthy.Wait()
	stalled.Kill()
	for _, p := range stalled.Procs {
		_ = p.Wait()
	}
	if CanonVerdicts(got.vs) != want {
		t.Errorf("sweep after worker stall differs from clean run")
	}
	s := c.Stats()
	if s.Reassigned != 1 || s.Contained != 0 {
		t.Errorf("stats = %+v, want Reassigned=1 Contained=0", s)
	}
}

// TestFleetHTTPTransport runs a campaign over the HTTP control plane —
// the same handler core behind POSTed frames instead of stdio — and
// probes the long-running server's /status and /metrics endpoints. A
// version-skewed frame POSTed to the RPC endpoint is rejected on the
// wire.
func TestFleetHTTPTransport(t *testing.T) {
	want := CanonVerdicts(serialSweep(t))
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 5, LeaseWait: 20 * time.Millisecond})
	srv, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr
	out := startCampaign(c)
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(DialHTTP(base), fmt.Sprintf("http-worker-%d", i))
		}(i)
	}
	got := awaitCampaign(t, out)
	if CanonVerdicts(got.vs) != want {
		t.Errorf("HTTP-transport sweep differs from clean run")
	}

	// Long-running server surface: /status and /metrics keep answering
	// after the round completes.
	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Job != JobCampaign || status.Version != ProtocolVersion {
		t.Errorf("/status = %+v, want campaign job at v%d", status, ProtocolVersion)
	}
	if status.Stats.UnitsDone != 5 || status.Stats.WorkersSeen != 2 {
		t.Errorf("/status stats = %+v, want UnitsDone=5 WorkersSeen=2", status.Stats)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if metrics["fleet_units_done"] != 5 || metrics["fleet_bad_frames"] != 0 {
		t.Errorf("/metrics = %v, want fleet_units_done=5 fleet_bad_frames=0", metrics)
	}

	// Version skew over the wire: the RPC endpoint answers with an error
	// envelope, never a unit.
	skew := DialHTTP(base).(*httpConn)
	reply, err := skew.RoundTrip(Envelope{V: ProtocolVersion + 1, Type: MsgHello, Worker: "from-the-future"})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgError {
		t.Errorf("skewed frame got %q reply, want error", reply.Type)
	}

	c.Close()
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
}
