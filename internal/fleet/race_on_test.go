//go:build race

package fleet

// raceDetectorEnabled scales the process battery's fuzz budgets: full
// size normally, smaller under -race where each evaluation costs ~10x.
const raceDetectorEnabled = true
