package fleet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"pfi/internal/harden"
)

// maxFrame bounds one newline-delimited wire frame. Campaign units are a
// few KB; fuzz units carry inline schedules and can reach a few hundred
// KB. 16 MiB is far above either and far below anything that would mask
// a runaway encoder.
const maxFrame = 16 << 20

// ServeConn runs the coordinator side of one stdio worker connection:
// newline-delimited JSON envelopes in, one reply frame per request out.
// It returns when the peer closes its write side. If the connection dies
// while its session holds leases — a crashed or killed worker — the
// session's units re-enter the pool via loss recovery, classified as a
// tool fault (the peer vanished; it did not merely run long).
func (c *Coordinator) ServeConn(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxFrame)
	session := ""
	var err error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Sniff the session so an abrupt EOF can be pinned on it. The
		// handler core owns all protocol semantics; this is bookkeeping.
		if e, derr := Decode(line); derr == nil {
			if e.Type == MsgResult || e.Type == MsgLease || e.Type == MsgCell {
				session = e.Session
			}
		}
		reply := c.Handle(line)
		if e, derr := Decode(line); derr == nil && e.Type == MsgHello {
			if re, rerr := Decode(reply); rerr == nil && re.Type == MsgJob {
				session = re.Session
			}
		}
		if _, werr := w.Write(append(reply, '\n')); werr != nil {
			err = werr
			break
		}
	}
	if err == nil {
		err = sc.Err()
	}
	if session != "" {
		c.LoseSession(session, harden.ToolFault)
	}
	return err
}

// ServeStdio runs a worker over the process's own stdin/stdout — the
// entry point a spawned worker child calls. All human-facing output must
// go to stderr; stdout carries only protocol frames.
func ServeStdio(name string) error {
	return RunWorker(newStdioConn(os.Stdin, os.Stdout, nil), name)
}

// stdioConn frames envelopes as newline-delimited JSON over a byte
// stream. closeFn, when set, tears down the underlying transport.
type stdioConn struct {
	mu      sync.Mutex
	w       io.Writer
	sc      *bufio.Scanner
	closeFn func() error
}

func newStdioConn(r io.Reader, w io.Writer, closeFn func() error) *stdioConn {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxFrame)
	return &stdioConn{w: w, sc: sc, closeFn: closeFn}
}

func (s *stdioConn) RoundTrip(e Envelope) (Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	frame, err := Encode(e)
	if err != nil {
		return Envelope{}, err
	}
	if _, err := s.w.Write(append(frame, '\n')); err != nil {
		return Envelope{}, err
	}
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		return Decode(line)
	}
	if err := s.sc.Err(); err != nil {
		return Envelope{}, err
	}
	return Envelope{}, io.EOF
}

func (s *stdioConn) Close() error {
	if s.closeFn != nil {
		return s.closeFn()
	}
	return nil
}

// Proc is one spawned worker process.
type Proc struct {
	Cmd  *exec.Cmd
	done chan error
}

// Wait blocks until the worker process exits and returns its exit error.
func (p *Proc) Wait() error { return <-p.done }

// Kill SIGKILLs the worker process.
func (p *Proc) Kill() error { return p.Cmd.Process.Kill() }

// Pool is a set of spawned worker processes.
type Pool struct {
	Procs []*Proc
}

// Wait blocks until every worker has exited; a clean drain exits 0.
func (p *Pool) Wait() {
	for _, proc := range p.Procs {
		_ = proc.Wait()
	}
}

// Kill SIGKILLs every worker still running.
func (p *Pool) Kill() {
	for _, proc := range p.Procs {
		_ = proc.Kill()
	}
}

// SpawnWorkers forks n local worker processes, each running argv with
// extra environment entries from env(i) appended to the parent's, and
// serves each one's stdio connection off the coordinator on its own
// goroutine. Worker stderr passes through to the parent's stderr. env
// may be nil.
//
// The returned pool owns the children; callers typically run the round,
// then Wait for the drained workers to exit.
func (c *Coordinator) SpawnWorkers(n int, argv []string, env func(i int) []string) (*Pool, error) {
	if n < 1 || len(argv) == 0 {
		return nil, fmt.Errorf("fleet: spawn needs n >= 1 and a command")
	}
	pool := &Pool{}
	for i := 0; i < n; i++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = os.Environ()
		if env != nil {
			cmd.Env = append(cmd.Env, env(i)...)
		}
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			pool.Kill()
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			pool.Kill()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			pool.Kill()
			return nil, fmt.Errorf("fleet: spawn worker %d: %w", i, err)
		}
		proc := &Proc{Cmd: cmd, done: make(chan error, 1)}
		go func() {
			// The child's stdout EOF ends ServeConn; Wait then reaps it.
			_ = c.ServeConn(stdout, stdin)
			_ = stdin.Close()
			proc.done <- cmd.Wait()
		}()
		pool.Procs = append(pool.Procs, proc)
	}
	return pool, nil
}
