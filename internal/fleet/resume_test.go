package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pfi/internal/harden"
	"pfi/internal/journal"
)

// openJournal opens a fresh write-ahead log under the test's temp dir.
func openJournal(t *testing.T, dir, name string) *journal.Log {
	t.Helper()
	l, err := journal.Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// streamUnit plays a worker streaming one unit through the handler
// core: every cell as a MsgCell frame, then the empty completion
// marker. Each frame must be acked.
func streamUnit(t *testing.T, c *Coordinator, session string, u Unit) {
	t.Helper()
	res, err := executeUnit(c.Job(), u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Verdicts {
		v := res.Verdicts[i]
		resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgCell, Session: session, Cell: &WireCell{Unit: u.ID, Verdict: &v}})
		if resp.Type != MsgAck {
			t.Fatalf("cell %d: got %+v, want ack", v.Index, resp)
		}
	}
	resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgResult, Session: session, Result: &Result{Unit: u.ID}})
	if resp.Type != MsgAck {
		t.Fatalf("completion marker: got %+v, want ack", resp)
	}
}

// TestCellStreamingCompletesUnits drives the v2 streaming shape through
// the handler core: every cell arrives as its own MsgCell frame and the
// unit completes on an empty result marker carrying no payload at all.
// The merge is byte-identical to the serial sweep, every streamed cell
// is counted, and a duplicate stream of an already-held cell is ignored
// without perturbing anything.
func TestCellStreamingCompletesUnits(t *testing.T) {
	want := CanonVerdicts(serialSweep(t))
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, fastCfg(2))
	out := startCampaign(c)
	s := hello(t, c, "streamer")
	held := leaseAll(t, c, []string{s}, 2)
	// Duplicate one cell mid-unit: the re-stream is acked and dropped.
	first, err := executeUnit(c.Job(), held[0].unit)
	if err != nil {
		t.Fatal(err)
	}
	dup := first.Verdicts[0]
	for i := 0; i < 2; i++ {
		resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgCell, Session: s, Cell: &WireCell{Unit: held[0].unit.ID, Verdict: &dup}})
		if resp.Type != MsgAck {
			t.Fatalf("duplicate stream %d: got %+v", i, resp)
		}
	}
	for _, h := range held {
		streamUnit(t, c, s, h.unit)
	}
	got := awaitCampaign(t, out)
	if CanonVerdicts(got.vs) != want {
		t.Errorf("streamed sweep differs from serial sweep")
	}
	st := c.Stats()
	if st.Cells != 36 {
		t.Errorf("Cells = %d, want 36 (duplicates must not count)", st.Cells)
	}
	if st.UnitsDone != 2 || st.BadFrames != 0 || st.Reassigned != 0 {
		t.Errorf("stats = %+v, want 2 clean units", st)
	}
	// A cell for a completed unit is stale, not merged and not an error.
	resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgCell, Session: s, Cell: &WireCell{Unit: held[0].unit.ID, Verdict: &dup}})
	if resp.Type != MsgAck {
		t.Errorf("late cell: got %+v, want stale ack", resp)
	}
	if st := c.Stats(); st.Stale != 1 {
		t.Errorf("Stale = %d, want 1", st.Stale)
	}
}

// TestLossKeepsStreamedCells proves streamed work survives its worker:
// a worker streams a prefix of its unit and dies, the reassigned worker
// dies too, and containment synthesizes only the cells nobody streamed —
// the prefix stays byte-identical to the serial sweep.
func TestLossKeepsStreamedCells(t *testing.T) {
	serial := serialSweep(t)
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, fastCfg(1))
	out := startCampaign(c)
	s1 := hello(t, c, "doomed-1")
	held := leaseAll(t, c, []string{s1}, 1)
	u := held[0].unit
	full, err := executeUnit(c.Job(), u)
	if err != nil {
		t.Fatal(err)
	}
	const streamed = 5
	for i := 0; i < streamed; i++ {
		v := full.Verdicts[i]
		if resp := c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgCell, Session: s1, Cell: &WireCell{Unit: u.ID, Verdict: &v}}); resp.Type != MsgAck {
			t.Fatalf("cell %d: got %+v", i, resp)
		}
	}
	c.LoseSession(s1, harden.ToolFault)
	// The reassigned holder dies without streaming anything: second
	// strike, unit contained.
	s2 := hello(t, c, "doomed-2")
	if held2 := leaseAll(t, c, []string{s2}, 1); held2[0].unit.ID != u.ID {
		t.Fatalf("reassignment leased unit %d, want %d", held2[0].unit.ID, u.ID)
	}
	c.LoseSession(s2, harden.ToolFault)
	got := awaitCampaign(t, out)
	if len(got.vs) != 36 {
		t.Fatalf("merged %d verdicts, want 36", len(got.vs))
	}
	wantPrefix := CanonVerdicts(serial[:streamed])
	if CanonVerdicts(got.vs[:streamed]) != wantPrefix {
		t.Errorf("streamed prefix was not kept:\ngot:\n%swant:\n%s", CanonVerdicts(got.vs[:streamed]), wantPrefix)
	}
	for i := streamed; i < len(got.vs); i++ {
		v := got.vs[i]
		if v.Err == nil || !strings.Contains(v.Err.Error(), "reassignment exhausted") || v.Outcome != harden.ToolFault {
			t.Fatalf("cell %d: %+v, want contained tool-fault", i, v)
		}
	}
	st := c.Stats()
	if st.Reassigned != 1 || st.Contained != 1 || st.Cells != streamed {
		t.Errorf("stats = %+v, want Reassigned=1 Contained=1 Cells=%d", st, streamed)
	}
}

// TestFleetCampaignJournalResume is the coordinator-restart leg of the
// determinism battery: a first coordinator journals a partial sweep
// (one complete unit, one interrupted mid-unit) and is canceled; fresh
// coordinators against the same journal — driving 2 and then 4 real
// spawned worker processes — resume instead of restart, and the merged
// sweep stays byte-identical to the serial baseline. A final
// coordinator with no workers at all completes instantly from the
// journal alone. Each adoption bumps the epoch.
func TestFleetCampaignJournalResume(t *testing.T) {
	want := CanonVerdicts(serialSweep(t))
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	l, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: journal a deterministic partial sweep through the handler
	// core — unit 0 streamed and completed, unit 1 streamed only twice —
	// then cancel mid-round, exactly like a killed coordinator.
	c1 := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 9, LeaseWait: 5 * time.Millisecond, Journal: l})
	ctx1, cancel1 := context.WithCancel(context.Background())
	out1 := make(chan campaignOut, 1)
	go func() {
		vs, stats, err := c1.RunCampaign(ctx1)
		out1 <- campaignOut{vs, stats, err}
	}()
	s := hello(t, c1, "interrupted")
	held := leaseAll(t, c1, []string{s}, 2)
	streamUnit(t, c1, s, held[0].unit)
	partial, err := executeUnit(c1.Job(), held[1].unit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		v := partial.Verdicts[i]
		if resp := c1.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgCell, Session: s, Cell: &WireCell{Unit: held[1].unit.ID, Verdict: &v}}); resp.Type != MsgAck {
			t.Fatalf("partial cell %d: got %+v", i, resp)
		}
	}
	cancel1()
	if o := <-out1; o.err == nil {
		t.Fatal("canceled run reported success")
	}
	if c1.Epoch() != 1 {
		t.Fatalf("first coordinator epoch = %d, want 1", c1.Epoch())
	}
	journaled := held[0].unit.Hi - held[0].unit.Lo + 2
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Phases 2 and 3: real spawned worker processes finish the sweep
	// from the journal. The second resume finds strictly more cells
	// banked (everything phase 2 streamed).
	minResumed := journaled
	for phase, workers := range []int{2, 4} {
		l, err := journal.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 9, LeaseWait: 5 * time.Millisecond, Journal: l})
		pool := spawnSelf(t, c, workers)
		vs, stats, err := c.RunCampaign(context.Background())
		c.Close()
		pool.Wait()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := CanonVerdicts(vs); got != want {
			t.Errorf("workers=%d: resumed sweep differs from serial baseline:\ngot:\n%swant:\n%s", workers, got, want)
		}
		if stats.Resumed < minResumed {
			t.Errorf("workers=%d: resumed %d cells, want >= %d", workers, stats.Resumed, minResumed)
		}
		if got := c.Stats().Cells; got != 36-stats.Resumed {
			t.Errorf("workers=%d: streamed %d cells, want %d (36 minus resumed)", workers, got, 36-stats.Resumed)
		}
		if wantEpoch := phase + 2; c.Epoch() != wantEpoch {
			t.Errorf("workers=%d: epoch = %d, want %d", workers, c.Epoch(), wantEpoch)
		}
		minResumed = 36 // after one full resume the journal holds the whole sweep
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 4: the journal alone is the sweep — no workers joined.
	l4, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l4.Close()
	c4 := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 9, LeaseWait: 5 * time.Millisecond, Journal: l4})
	vs, stats, err := c4.RunCampaign(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := CanonVerdicts(vs); got != want {
		t.Errorf("journal-only sweep differs from serial baseline")
	}
	if stats.Resumed != 36 || c4.Stats().WorkersSeen != 0 {
		t.Errorf("journal-only run: Resumed=%d WorkersSeen=%d, want 36 and 0", stats.Resumed, c4.Stats().WorkersSeen)
	}
	if c4.Epoch() != 4 {
		t.Errorf("fourth adoption epoch = %d, want 4", c4.Epoch())
	}
}

// TestJournalWriteFailureAbortsRound proves the coordinator refuses to
// keep merging work it can no longer journal: when the write-ahead log
// dies mid-round, the round aborts with the journal fault — completed
// cells are never silently unjournaled.
func TestJournalWriteFailureAbortsRound(t *testing.T) {
	l := openJournal(t, t.TempDir(), "doomed.journal")
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 2, LeaseWait: 5 * time.Millisecond, Journal: l})
	out := make(chan campaignOut, 1)
	go func() {
		vs, stats, err := c.RunCampaign(context.Background())
		out <- campaignOut{vs, stats, err}
	}()
	s := hello(t, c, "writer")
	held := leaseAll(t, c, []string{s}, 1)
	full, err := executeUnit(c.Job(), held[0].unit)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	v := full.Verdicts[0]
	c.HandleEnvelope(Envelope{V: ProtocolVersion, Type: MsgCell, Session: s, Cell: &WireCell{Unit: held[0].unit.ID, Verdict: &v}})
	select {
	case o := <-out:
		if o.err == nil || !strings.Contains(o.err.Error(), "journal") {
			t.Fatalf("round survived a dead journal: err = %v", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("round never aborted after journal failure")
	}
}

// TestWorkerReconnectReAdoption restarts the coordinator underneath a
// live worker: the HTTP server dies mid-sweep, a new coordinator
// adopts the same journal (bumping the epoch) and rebinds the same
// address, and the RunWorkerReconnect worker — after backing off — re-
// adopts the new coordinator, finishes the sweep, and drains cleanly.
func TestWorkerReconnectReAdoption(t *testing.T) {
	want := CanonVerdicts(serialSweep(t))
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	l1, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 12, LeaseWait: 20 * time.Millisecond, Journal: l1})
	srv1, err := c1.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr
	ctx1, cancel1 := context.WithCancel(context.Background())
	out1 := make(chan campaignOut, 1)
	go func() {
		vs, stats, err := c1.RunCampaign(ctx1)
		out1 <- campaignOut{vs, stats, err}
	}()

	var logMu sync.Mutex
	var logBuf strings.Builder
	rcLog := func(format string, args ...any) {
		logMu.Lock()
		fmt.Fprintf(&logBuf, format+"\n", args...)
		logMu.Unlock()
		t.Logf(format, args...)
	}
	b0 := ReconnectBackoffs()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorkerReconnect(context.Background(),
			func() (Conn, error) { return DialHTTP("http://" + addr), nil },
			"phoenix",
			Reconnect{BaseDelay: 20 * time.Millisecond, MaxDelay: 250 * time.Millisecond, MaxAttempts: 100, Log: rcLog})
	}()

	// Let the worker bank some cells, then kill the coordinator's server
	// out from under it.
	waitStats(t, c1, "first streamed cells", func(s Stats) bool { return s.Cells >= 2 })
	srv1.Close()
	cancel1()
	<-out1 // canceled (or complete, if the worker outran the kill) — the journal decides
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	// Hold the new coordinator back until the worker has actually backed
	// off at least once — the restart it must survive.
	deadline := time.Now().Add(30 * time.Second)
	for ReconnectBackoffs() == b0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never backed off after coordinator death")
		}
		time.Sleep(5 * time.Millisecond)
	}

	l2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	c2 := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 12, LeaseWait: 20 * time.Millisecond, Journal: l2})
	var srv2 *Server
	for i := 0; ; i++ {
		srv2, err = c2.Serve(addr)
		if err == nil {
			break
		}
		if i >= 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer srv2.Close()
	out2 := startCampaign(c2)
	got := awaitCampaign(t, out2)
	c2.Close() // drain: the reconnected worker exits cleanly
	select {
	case werr := <-workerDone:
		if werr != nil {
			t.Errorf("reconnecting worker: %v", werr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("reconnecting worker never drained")
	}
	if CanonVerdicts(got.vs) != want {
		t.Errorf("post-restart sweep differs from serial baseline")
	}
	if got.stats.Resumed < 2 {
		t.Errorf("Resumed = %d, want >= 2 (the cells banked before the restart)", got.stats.Resumed)
	}
	if c2.Epoch() != 2 {
		t.Errorf("restarted coordinator epoch = %d, want 2", c2.Epoch())
	}
	if ReconnectBackoffs() == b0 {
		t.Error("worker reconnected without a single backoff")
	}
	logMu.Lock()
	adopted := strings.Contains(logBuf.String(), "re-adopted")
	logMu.Unlock()
	if !adopted {
		t.Error("worker never observed the epoch bump (no re-adoption log line)")
	}
}

// TestQueueDurability proves the multi-campaign queue is a pure
// function of its journal: adds, leases, and completions all survive a
// process restart (reopening the log), an in-flight lease resumes ahead
// of fresh work, and IDs never collide across generations.
func TestQueueDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "queue.journal")
	jobs := []Job{
		{Kind: JobCampaign, Spec: &sweepSpec, Scenario: "sweep"},
		{Kind: JobFuzz, Profile: "solaris"},
		{Kind: JobCampaign, Spec: &sweepSpec, Scenario: "sweep-2"},
	}

	l, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	q, err := OpenQueue(l)
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		qj, err := q.Add(job, fmt.Sprintf("cells-%d.journal", i))
		if err != nil {
			t.Fatal(err)
		}
		if qj.ID != i {
			t.Fatalf("job %d got ID %d", i, qj.ID)
		}
	}
	leased, ok, err := q.Lease()
	if err != nil || !ok || leased.ID != 0 {
		t.Fatalf("first lease = %+v ok=%t err=%v, want job 0", leased, ok, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// "Coordinator restart": replay the log. The in-flight lease is
	// still pending — first in line — with its cell journal intact.
	l, err = journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	q, err = OpenQueue(l)
	if err != nil {
		t.Fatal(err)
	}
	pending := q.Pending()
	if len(pending) != 3 || q.Done() != 0 {
		t.Fatalf("after restart: %d pending %d done, want 3 and 0", len(pending), q.Done())
	}
	if !pending[0].Leased || pending[0].ID != 0 || pending[0].JournalPath != "cells-0.journal" {
		t.Fatalf("in-flight job not first: %+v", pending[0])
	}
	released, ok, err := q.Lease()
	if err != nil || !ok || released.ID != 0 {
		t.Fatalf("re-lease = %+v ok=%t err=%v, want in-flight job 0 again", released, ok, err)
	}
	if err := q.Complete(0); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(0); err == nil {
		t.Fatal("completing a finished job twice succeeded")
	}
	next, ok, err := q.Lease()
	if err != nil || !ok || next.ID != 1 {
		t.Fatalf("next lease = %+v ok=%t err=%v, want job 1", next, ok, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: completion stuck, lease stuck, new IDs are fresh.
	l, err = journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	q, err = OpenQueue(l)
	if err != nil {
		t.Fatal(err)
	}
	if q.Done() != 1 {
		t.Errorf("Done = %d, want 1", q.Done())
	}
	pending = q.Pending()
	if len(pending) != 2 || pending[0].ID != 1 || !pending[0].Leased || pending[1].ID != 2 {
		t.Fatalf("pending after second restart = %+v", pending)
	}
	added, err := q.Add(Job{Kind: JobFuzz}, "")
	if err != nil {
		t.Fatal(err)
	}
	if added.ID != 3 {
		t.Errorf("new job got recycled ID %d, want 3", added.ID)
	}
}

// TestMetricsExposeCrashSafetyCounters scrapes /metrics on a journaled
// coordinator after a sweep: the write-ahead-log counters and the
// reconnect counter are present, and the journal ones are live.
func TestMetricsExposeCrashSafetyCounters(t *testing.T) {
	l := openJournal(t, t.TempDir(), "sweep.journal")
	defer l.Close()
	c := NewCampaign(sweepSpec, "sweep", WireHarden{}, Config{Shards: 3, LeaseWait: 20 * time.Millisecond, Journal: l})
	srv, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	out := startCampaign(c)
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(DialHTTP("http://"+srv.Addr), "scraped")
	}()
	awaitCampaign(t, out)
	c.Close()
	if err := <-workerDone; err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"journal_records_written", "journal_bytes", "resume_cells_skipped", "worker_reconnect_backoffs", "fleet_cells"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics is missing %q", key)
		}
	}
	// This sweep journaled 36 verdicts plus metadata; the counters are
	// process-cumulative, so lower bounds are what is stable.
	if m["journal_records_written"] < 36 {
		t.Errorf("journal_records_written = %d, want >= 36", m["journal_records_written"])
	}
	if m["journal_bytes"] <= 0 {
		t.Errorf("journal_bytes = %d, want > 0", m["journal_bytes"])
	}
	if m["fleet_cells"] != 36 {
		t.Errorf("fleet_cells = %d, want 36", m["fleet_cells"])
	}
}
