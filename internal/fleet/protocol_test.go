package fleet

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pfi/internal/campaign"
	"pfi/internal/explore"
	"pfi/internal/harden"
	"pfi/internal/tcp"
)

var update = flag.Bool("update", false, "rewrite wire-protocol golden files")

// goldenFrames is one envelope of every message type with every payload
// field exercised — the wire protocol's compatibility surface. Changing
// any encoding (a renamed json tag, a new required field) changes the
// golden and forces a deliberate ProtocolVersion decision.
func goldenFrames() []struct {
	name string
	env  Envelope
} {
	spec := campaign.Spec{
		Protocol: "typed",
		Types:    []string{"DATA", "ACK"},
		Faults:   []campaign.FaultKind{campaign.Drop, campaign.Delay},
		DelayMS:  1500,
	}
	sched := explore.Schedule{
		World:   explore.WorldTCP,
		Profile: tcp.SunOS413().Name,
		Warmup:  4,
		TailMS:  2000,
		Genes: []explore.Gene{{
			Kind:  explore.GeneFault,
			Node:  "vendor",
			Fault: campaign.Drop,
			Type:  "*",
			AtMS:  1000,
			DurMS: 500,
			Prob:  1,
		}},
	}
	hw := WireHarden{StallSteps: 200000, TraceEntries: 50000, ScriptSteps: 100000, InjectedMsgs: 10000, Timers: 10000, Retry: true}
	return []struct {
		name string
		env  Envelope
	}{
		{"hello", Envelope{V: ProtocolVersion, Type: MsgHello, Worker: "pficampaign@host"}},
		{"job_campaign", Envelope{V: ProtocolVersion, Type: MsgJob, Session: "w1", Epoch: 3,
			Job: &Job{Kind: JobCampaign, Spec: &spec, Scenario: "gmp", Harden: hw}}},
		{"job_fuzz", Envelope{V: ProtocolVersion, Type: MsgJob, Session: "w1",
			Job: &Job{Kind: JobFuzz, Profile: "solaris", Harden: hw}}},
		{"lease", Envelope{V: ProtocolVersion, Type: MsgLease, Session: "w1"}},
		{"unit_campaign", Envelope{V: ProtocolVersion, Type: MsgUnit,
			Unit: &Unit{ID: 3, Round: 0, Lo: 8, Hi: 12}}},
		{"unit_fuzz", Envelope{V: ProtocolVersion, Type: MsgUnit,
			Unit: &Unit{ID: 7, Round: 2, Lo: 4, Hi: 5, Schedules: []explore.Schedule{sched}}}},
		{"wait", Envelope{V: ProtocolVersion, Type: MsgWait}},
		{"drain", Envelope{V: ProtocolVersion, Type: MsgDrain}},
		{"cell_campaign", Envelope{V: ProtocolVersion, Type: MsgCell, Session: "w1",
			Cell: &WireCell{Unit: 3, Verdict: &WireVerdict{
				Index: 8, OK: true, Note: "sent=40 delivered=40", Outcome: int(harden.Pass), ElapsedUS: 1200,
			}}}},
		{"cell_fuzz", Envelope{V: ProtocolVersion, Type: MsgCell, Session: "w2",
			Cell: &WireCell{Unit: 7, Outcome: &WireOutcome{
				Index:    4,
				Schedule: sched,
				Cov:      []CovWord{{I: 0, W: 0x8000000000000001}, {I: 1023, W: 42}},
			}}}},
		{"result_empty", Envelope{V: ProtocolVersion, Type: MsgResult, Session: "w1",
			Result: &Result{Unit: 3}}},
		{"result_campaign", Envelope{V: ProtocolVersion, Type: MsgResult, Session: "w1",
			Result: &Result{Unit: 3, Verdicts: []WireVerdict{
				{Index: 8, OK: true, Note: "sent=40 delivered=40", Outcome: int(harden.Pass), ElapsedUS: 1200},
				{Index: 9, OK: false, Note: "views diverged", Outcome: int(harden.Fail)},
				{Index: 10, Err: "boom", Outcome: int(harden.ToolFault), Retries: 1},
				{Index: 11, Err: "stalled", Outcome: int(harden.Livelock)},
			}}}},
		{"result_fuzz", Envelope{V: ProtocolVersion, Type: MsgResult, Session: "w2",
			Result: &Result{Unit: 7, Outcomes: []WireOutcome{{
				Index:      4,
				Schedule:   sched,
				Cov:        []CovWord{{I: 0, W: 0x8000000000000001}, {I: 1023, W: 42}},
				Violations: []explore.Violation{{Kind: explore.ViolExecError, Detail: "tool fault: boom"}},
			}}}}},
		{"ack", Envelope{V: ProtocolVersion, Type: MsgAck}},
		{"error", Envelope{V: ProtocolVersion, Type: MsgError, Error: "fleet: unknown session \"w9\""}},
	}
}

// TestWireGoldens locks every frame's byte-level encoding against
// testdata/fleet/frames.golden, and proves each decodes back to the
// original envelope. Run with -update to regenerate after a deliberate
// protocol change (which must also bump ProtocolVersion).
func TestWireGoldens(t *testing.T) {
	var b strings.Builder
	for _, f := range goldenFrames() {
		frame, err := Encode(f.env)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		fmt.Fprintf(&b, "%s: %s\n", f.name, frame)
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.name, err)
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", f.name, err)
		}
		if !bytes.Equal(frame, re) {
			t.Errorf("%s: round-trip drift:\n first: %s\nsecond: %s", f.name, frame, re)
		}
	}
	path := filepath.Join("testdata", "fleet", "frames.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/fleet -run TestWireGoldens -update` after a deliberate protocol change)", err)
	}
	if b.String() != string(want) {
		t.Errorf("wire encoding drifted from %s — if intentional, bump ProtocolVersion and regenerate with -update.\ngot:\n%swant:\n%s",
			path, b.String(), want)
	}
}

// TestDecodeRejectsGarbage pins the frame-level rejections: malformed
// JSON, valid JSON of the wrong shape, and frames with no message type
// never reach the handler core.
func TestDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json at all",
		`{"v":1,"type":`,
		`[1,2,3]`,
		`"just a string"`,
		`{"v":1}`,
		`{"session":"w1"}`,
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%q) accepted garbage", bad)
		}
	}
	// Unknown fields are tolerated (forward compatibility within a
	// version); the version stamp is what gates semantics.
	if _, err := Decode([]byte(`{"v":1,"type":"lease","future_field":true}`)); err != nil {
		t.Errorf("Decode rejected unknown field: %v", err)
	}
}

// TestVersionSkewRejected proves both sides refuse to talk across
// protocol versions: the coordinator rejects skewed frames with an
// explicit error naming both versions (counting them as bad frames, not
// merging them), and the worker rejects a skewed coordinator reply.
func TestVersionSkewRejected(t *testing.T) {
	c := NewCampaign(campaign.Spec{Protocol: "typed", Types: []string{"DATA"}}, "sweep", WireHarden{}, Config{})
	for _, v := range []int{0, 1, -1, ProtocolVersion + 10} {
		resp := c.HandleEnvelope(Envelope{V: v, Type: MsgHello, Worker: "skewed"})
		if resp.Type != MsgError {
			t.Fatalf("v=%d: got %q reply, want error", v, resp.Type)
		}
		if !strings.Contains(resp.Error, "protocol version mismatch") ||
			!strings.Contains(resp.Error, fmt.Sprintf("v%d", v)) {
			t.Errorf("v=%d: rejection %q does not name the versions", v, resp.Error)
		}
	}
	if got := c.Stats().BadFrames; got != 4 {
		t.Errorf("BadFrames = %d, want 4", got)
	}
	if got := c.Stats().WorkersSeen; got != 0 {
		t.Errorf("WorkersSeen = %d, want 0 — a skewed worker must not be admitted", got)
	}
	// Worker side: a reply stamped with a different version is refused.
	err := checkReply(Envelope{V: ProtocolVersion + 1, Type: MsgJob, Session: "w1", Job: &Job{Kind: JobCampaign}}, MsgJob)
	if err == nil || !strings.Contains(err.Error(), "protocol version mismatch") {
		t.Errorf("checkReply accepted skewed coordinator reply (err=%v)", err)
	}
}

// TestWireHardenRoundTrip pins what travels and what deliberately does
// not: deterministic watchdogs and budgets round-trip exactly; the
// wall-clock timeout and repro paths never reach a worker.
func TestWireHardenRoundTrip(t *testing.T) {
	cfg := harden.Config{
		StallSteps: 123,
		Budget:     harden.Budget{TraceEntries: 1, ScriptSteps: 2, InjectedMsgs: 3, Timers: 4},
		Retry:      true,
		Timeout:    999, // wall-clock: must not travel
		ReproDir:   "/tmp/quarantine",
	}
	got := HardenWire(cfg).Config()
	if got.StallSteps != 123 || got.Budget != cfg.Budget || !got.Retry {
		t.Errorf("deterministic knobs dropped: %+v", got)
	}
	if got.Timeout != 0 {
		t.Errorf("wall-clock Timeout traveled: %v", got.Timeout)
	}
	if got.ReproDir != "" {
		t.Errorf("ReproDir traveled: %q", got.ReproDir)
	}
}

// TestCoverageWireRoundTrip proves the sparse encoding preserves every
// bit — including the sign-bit word that would corrupt through a float —
// and rejects out-of-range word indices from hostile results.
func TestCoverageWireRoundTrip(t *testing.T) {
	cov := &explore.Coverage{}
	if err := cov.SetWord(0, 0x8000000000000001); err != nil {
		t.Fatal(err)
	}
	if err := cov.SetWord(511, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	if err := cov.SetWord(1023, 1); err != nil {
		t.Fatal(err)
	}
	wire := covToWire(cov)
	if len(wire) != 3 {
		t.Fatalf("sparse encoding has %d words, want 3: %v", len(wire), wire)
	}
	back, err := covFromWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	gw, bw := cov.Words(), back.Words()
	for i := range gw {
		if gw[i] != bw[i] {
			t.Fatalf("word %d: %#x round-tripped to %#x", i, gw[i], bw[i])
		}
	}
	for _, bad := range []CovWord{{I: -1, W: 1}, {I: 1024, W: 1}, {I: 1 << 20, W: 1}} {
		if _, err := covFromWire([]CovWord{bad}); err == nil {
			t.Errorf("covFromWire accepted out-of-range word %+v", bad)
		}
	}
}
