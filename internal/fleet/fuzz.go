package fleet

import (
	"context"
	"fmt"

	"pfi/internal/explore"
	"pfi/internal/tcp"
)

// NewFuzz builds a coordinator that shards fuzz generation batches over
// the fleet. profile names the default vendor profile for schedules that
// do not pin one ("" = SunOS 4.1.3); hw is the deterministic isolation
// policy each candidate evaluation runs under on the worker.
func NewFuzz(profile string, hw WireHarden, cfg Config) *Coordinator {
	return NewCoordinator(Job{Kind: JobFuzz, Profile: profile, Harden: hw}, cfg)
}

// EvalBatch shards one generation batch over the fleet and merges the
// outcomes back in candidate order — the explore.Options.EvalBatch hook.
// Each outcome is a pure function of its schedule, so the merged slice
// is identical to in-process evaluation regardless of which worker
// evaluated what, in what order.
func (c *Coordinator) EvalBatch(ctx context.Context, batch []explore.Schedule) ([]*explore.Outcome, error) {
	if c.job.Kind != JobFuzz {
		return nil, fmt.Errorf("fleet: EvalBatch on a %s coordinator", c.job.Kind)
	}
	r := c.newRound(len(batch), func(sp Span) []explore.Schedule {
		return append([]explore.Schedule(nil), batch[sp.Lo:sp.Hi]...)
	})
	results, err := c.RunRound(ctx, r)
	if err != nil {
		return nil, err
	}
	outs := make([]*explore.Outcome, len(batch))
	for _, res := range results {
		if res == nil {
			continue
		}
		for _, wo := range res.Outcomes {
			o, oerr := outcomeFromWire(wo)
			if oerr != nil {
				return nil, oerr // validated at merge time; reaching this is a coordinator bug
			}
			outs[wo.Index] = o
		}
	}
	for i, o := range outs {
		if o == nil {
			return nil, fmt.Errorf("fleet: candidate %d never evaluated", i)
		}
	}
	return outs, nil
}

// RunFuzz runs the coverage-guided exploration loop with candidate
// evaluation sharded over the fleet. Everything sequential stays on the
// coordinator — candidate derivation, corpus evolution, shrinking, repro
// emission — so the report (fingerprint, corpus, findings, emitted
// bytes) is bit-identical to single-process explore.Fuzz for the same
// seed. opts.Profile is overridden from the job so coordinator-side
// shrink evaluations and worker-side batch evaluations resolve the same
// vendor profile.
//
// Crash safety rides on opts.Journal: because derivation, corpus
// evolution, and generation boundaries all live here on the
// coordinator, explore's own generation-boundary journaling makes the
// fleet run resumable with no extra wire traffic — a restarted
// coordinator skips the journaled generations and re-dispatches only
// the interrupted one. The coordinator additionally stamps its epoch
// into the journal so re-adopted workers can be told apart.
func (c *Coordinator) RunFuzz(opts explore.Options) (*explore.Report, error) {
	if c.job.Kind != JobFuzz {
		return nil, fmt.Errorf("fleet: RunFuzz on a %s coordinator", c.job.Kind)
	}
	prof, err := tcp.ProfileByName(c.job.Profile)
	if err != nil {
		return nil, err
	}
	if opts.Journal != nil {
		if err := c.adoptJournal(opts.Journal); err != nil {
			return nil, err
		}
	}
	opts.Profile = prof
	opts.Harden = c.job.Harden.Config()
	opts.EvalBatch = c.EvalBatch
	return explore.Fuzz(opts)
}

// outcomeFromWire rebuilds the deterministic projection of an outcome:
// schedule, coverage, violations. Result and Source stay nil — the fuzz
// loop's admit/handle path never reads them, and shrinking re-evaluates
// locally.
func outcomeFromWire(w WireOutcome) (*explore.Outcome, error) {
	cov, err := covFromWire(w.Cov)
	if err != nil {
		return nil, err
	}
	return &explore.Outcome{Schedule: w.Schedule, Cov: cov, Violations: w.Violations}, nil
}
