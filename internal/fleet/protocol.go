// Package fleet shards campaign matrices and fuzz generation batches
// across N worker processes — local spawned children or remote machines —
// and merges their verdicts back deterministically. It is the
// fault-injection-as-a-service substrate: a single coordinator owns the
// work plan and the merge, workers own nothing but the cell they are
// leasing, and the result stream is bit-identical to single-process
// campaign.RunParallel / explore.Fuzz for the same seed at any shard
// count and any completion order.
//
// Architecture: one handler core (Coordinator.HandleEnvelope) behind two
// transports. Spawned workers speak newline-delimited JSON frames over
// their stdin/stdout (stdio.go); remote workers POST the same frames to
// the coordinator's HTTP control plane (http.go), which also serves
// /status and /metrics for long-running fleets. Sessions are per-worker
// state: a worker announces itself with hello, receives the job and a
// session ID, then loops lease -> execute -> result until drained.
//
// Loss recovery reuses the harden taxonomy: a unit whose worker dies
// (stdio EOF -> ToolFault) or goes silent past the unit timeout
// (Timeout) is reassigned exactly once; a second loss records the unit's
// cells as contained instead of reassigning again, so one hostile worker
// can neither duplicate nor starve a cell. Results arriving for a unit
// that was already completed or reassigned elsewhere are counted stale
// and dropped — exactly-once merge regardless of how workers misbehave.
//
// Crash safety (v2): workers stream each completed cell (MsgCell) before
// the unit-completion marker (MsgResult), so a lost unit only forfeits
// the cells not yet reported. A coordinator given Config.Journal streams
// every merged campaign cell into the write-ahead log and pre-fills the
// journaled cells on the next run — a kill -9'd coordinator restarted
// against the same journal re-runs only the gap, and each restart bumps
// an epoch (RecEpoch) that reconnecting workers observe when they are
// re-adopted. Fuzz runs journal on the explore side instead (the
// coordinator owns derivation there; see Coordinator.RunFuzz).
package fleet

import (
	"encoding/json"
	"fmt"

	"pfi/internal/campaign"
	"pfi/internal/explore"
	"pfi/internal/harden"
)

// ProtocolVersion stamps every frame. A coordinator rejects frames from
// any other version with an explicit error rather than risking a silent
// mis-merge between drifted binaries. v2 added per-cell result streaming
// (MsgCell) and coordinator epochs.
const ProtocolVersion = 2

// Message types carried in Envelope.Type. hello/lease/cell/result flow
// worker -> coordinator; job/unit/wait/drain/ack/error are the responses.
const (
	MsgHello  = "hello"  // worker announces itself, expects MsgJob
	MsgJob    = "job"    // coordinator assigns a session + the job
	MsgLease  = "lease"  // worker asks for a unit
	MsgUnit   = "unit"   // coordinator leases one work unit
	MsgWait   = "wait"   // no unit available yet; poll again
	MsgDrain  = "drain"  // no more work ever; worker exits
	MsgCell   = "cell"   // worker streams one completed cell of a leased unit
	MsgResult = "result" // worker marks a unit complete (cells already streamed)
	MsgAck    = "ack"    // coordinator accepted (or staled) the result
	MsgError  = "error"  // protocol-level rejection; body in Error
)

// Job kinds.
const (
	JobCampaign = "campaign" // shard a generated case matrix
	JobFuzz     = "fuzz"     // evaluate fuzz candidate schedules
)

// Envelope is the single wire frame both transports carry: one JSON
// object per message, newline-delimited on stdio, one per HTTP POST.
type Envelope struct {
	// V is the protocol version; every frame carries it and mismatches
	// are rejected at the handler, never silently merged.
	V int `json:"v"`
	// Type is one of the Msg* constants.
	Type string `json:"type"`
	// Session identifies the worker (assigned by MsgJob, echoed on every
	// subsequent request).
	Session string `json:"session,omitempty"`
	// Worker is the peer's self-description on hello (diagnostics only).
	Worker string `json:"worker,omitempty"`
	// Epoch stamps MsgJob replies with the coordinator's journal epoch
	// (restart count). A reconnecting worker that sees the epoch change
	// knows it was re-adopted by a restarted coordinator, not merely
	// re-admitted by the same one. 0 means no journal is attached.
	Epoch int `json:"epoch,omitempty"`
	// Job is the assignment payload of MsgJob.
	Job *Job `json:"job,omitempty"`
	// Unit is the leased work of MsgUnit.
	Unit *Unit `json:"unit,omitempty"`
	// Cell is one streamed cell of MsgCell.
	Cell *WireCell `json:"cell,omitempty"`
	// Result is the completion marker of MsgResult. Its payload entries
	// fill any cells not already streamed (a v1-style full-unit result is
	// therefore still merged correctly); cells already held first-write-
	// win.
	Result *Result `json:"result,omitempty"`
	// Error is the rejection text of MsgError.
	Error string `json:"error,omitempty"`
}

// Job tells a worker everything it needs to execute any unit of the run.
// Campaign workers regenerate the deterministic case matrix locally from
// Spec (cells travel as index ranges, never as scripts); fuzz workers
// receive candidate schedules inline per unit.
type Job struct {
	// Kind is JobCampaign or JobFuzz.
	Kind string `json:"kind"`
	// Spec is the campaign matrix specification (JobCampaign).
	Spec *campaign.Spec `json:"spec,omitempty"`
	// Scenario names the registered scenario workers drive each case
	// through (JobCampaign; see RegisterScenario).
	Scenario string `json:"scenario,omitempty"`
	// Profile names the default vendor profile for fuzz schedules that do
	// not pin one ("" = SunOS 4.1.3, the runner default everywhere).
	Profile string `json:"profile,omitempty"`
	// Harden is the per-cell isolation policy, deterministic knobs only.
	Harden WireHarden `json:"harden"`
}

// WireHarden is the subset of harden.Config a job carries: the
// simulated-time watchdogs and budgets whose verdicts are identical on
// every machine. Wall-clock knobs (Timeout, Context) deliberately stay
// coordinator-side — the coordinator meters workers with its own unit
// timeout instead, so remote execution cannot make a sweep
// machine-dependent.
type WireHarden struct {
	StallSteps   int  `json:"stall_steps,omitempty"`
	TraceEntries int  `json:"trace_entries,omitempty"`
	ScriptSteps  int  `json:"script_steps,omitempty"`
	InjectedMsgs int  `json:"injected_msgs,omitempty"`
	Timers       int  `json:"timers,omitempty"`
	Retry        bool `json:"retry,omitempty"`
}

// HardenWire projects a harden.Config onto its wire-safe subset.
func HardenWire(c harden.Config) WireHarden {
	return WireHarden{
		StallSteps:   c.StallSteps,
		TraceEntries: c.Budget.TraceEntries,
		ScriptSteps:  c.Budget.ScriptSteps,
		InjectedMsgs: c.Budget.InjectedMsgs,
		Timers:       c.Budget.Timers,
		Retry:        c.Retry,
	}
}

// Config expands the wire form back into a worker-side harden.Config.
func (w WireHarden) Config() harden.Config {
	return harden.Config{
		StallSteps: w.StallSteps,
		Budget: harden.Budget{
			TraceEntries: w.TraceEntries,
			ScriptSteps:  w.ScriptSteps,
			InjectedMsgs: w.InjectedMsgs,
			Timers:       w.Timers,
		},
		Retry: w.Retry,
	}
}

// Unit is one leased work unit: a contiguous [Lo,Hi) slice of the
// round's index space. Campaign units address the generated case matrix;
// fuzz units carry their candidate schedules inline (indexed Lo..Hi-1
// within the generation batch).
type Unit struct {
	// ID is unique across the coordinator's lifetime.
	ID int `json:"id"`
	// Round groups the units of one dispatch (fuzz generations dispatch
	// one round each; a campaign is a single round).
	Round int `json:"round"`
	// Lo and Hi bound the unit's cell indices: [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Schedules is the fuzz payload: the candidate genomes for cells
	// Lo..Hi-1, in order.
	Schedules []explore.Schedule `json:"schedules,omitempty"`
}

// WireCell is one streamed cell of a leased unit: exactly one of Verdict
// (JobCampaign) or Outcome (JobFuzz) is set. Streaming cells as they
// complete bounds the blast radius of a lost worker to the cells it had
// not yet reported — the coordinator keeps everything already streamed
// and a reassigned unit only has to re-earn the gap.
type WireCell struct {
	// Unit is the leased unit this cell belongs to.
	Unit int `json:"unit"`
	// Verdict is the campaign cell payload (JobCampaign).
	Verdict *WireVerdict `json:"verdict,omitempty"`
	// Outcome is the fuzz cell payload (JobFuzz).
	Outcome *WireOutcome `json:"outcome,omitempty"`
}

// Result marks a unit complete. A v2 worker streams its cells via
// MsgCell and sends an empty payload here; a payload, when present,
// fills any cells the coordinator is still missing (first-write-wins),
// which keeps full-unit results mergeable.
type Result struct {
	// Unit echoes the unit ID.
	Unit int `json:"unit"`
	// Verdicts are the campaign cells (JobCampaign).
	Verdicts []WireVerdict `json:"verdicts,omitempty"`
	// Outcomes are the evaluated fuzz candidates (JobFuzz).
	Outcomes []WireOutcome `json:"outcomes,omitempty"`
}

// WireVerdict is the deterministic projection of a campaign.Verdict.
// Wall-clock cost travels for observability but is excluded from
// CanonVerdicts, and isolation stacks never travel at all.
type WireVerdict struct {
	// Index is the global case index in the generated matrix.
	Index int `json:"index"`
	// OK, Note, Err, and Outcome mirror campaign.Verdict (Err as text,
	// "" meaning nil; Outcome as the harden.Kind ordinal).
	OK      bool   `json:"ok"`
	Note    string `json:"note,omitempty"`
	Err     string `json:"err,omitempty"`
	Outcome int    `json:"outcome"`
	// Retries counts isolation-layer retry attempts (stats only).
	Retries int `json:"retries,omitempty"`
	// ElapsedUS is the worker-side wall-clock cost in microseconds.
	ElapsedUS int64 `json:"elapsed_us,omitempty"`
}

// CovWord is one non-zero word of a coverage bitmap — the sparse wire
// form of explore.Coverage.
type CovWord struct {
	// I is the word index; W its 64 feature bits.
	I int    `json:"i"`
	W uint64 `json:"w"`
}

// WireOutcome is the deterministic projection of an explore.Outcome: the
// schedule, its coverage, and its oracle violations — everything the fuzz
// loop's admit/handle path consumes. The conformance Result stays on the
// worker; shrinking re-evaluates locally on the coordinator.
type WireOutcome struct {
	// Index is the cell index within the generation batch.
	Index int `json:"index"`
	// Schedule is the evaluated genome.
	Schedule explore.Schedule `json:"schedule"`
	// Cov is the sparse coverage bitmap.
	Cov []CovWord `json:"cov,omitempty"`
	// Violations are the oracle breaches observed on the worker.
	Violations []explore.Violation `json:"violations,omitempty"`
}

// Encode renders an envelope as one JSON frame (no trailing newline; the
// stdio transport adds its own delimiter).
func Encode(e Envelope) ([]byte, error) {
	return json.Marshal(e)
}

// Decode parses one frame. Malformed JSON and structurally empty frames
// are rejected here; version mismatches are the handler's job so the
// rejection can name both versions.
func Decode(data []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return Envelope{}, fmt.Errorf("fleet: malformed frame: %w", err)
	}
	if e.Type == "" {
		return Envelope{}, fmt.Errorf("fleet: frame missing message type")
	}
	return e, nil
}

// errEnvelope builds a protocol-level rejection.
func errEnvelope(msg string) Envelope {
	return Envelope{V: ProtocolVersion, Type: MsgError, Error: msg}
}

// mustEncode marshals a handler-built envelope; these are all plain
// structs, so a marshal failure is a programming error.
func mustEncode(e Envelope) []byte {
	data, err := Encode(e)
	if err != nil {
		panic(fmt.Sprintf("fleet: encoding %s envelope: %v", e.Type, err))
	}
	return data
}

// covToWire sparsifies a coverage bitmap.
func covToWire(cov *explore.Coverage) []CovWord {
	if cov == nil {
		return nil
	}
	var out []CovWord
	for i, w := range cov.Words() {
		if w != 0 {
			out = append(out, CovWord{I: i, W: w})
		}
	}
	return out
}

// covFromWire rebuilds a coverage bitmap; bad word indices mean a
// corrupted or hostile result and surface as an error.
func covFromWire(words []CovWord) (*explore.Coverage, error) {
	cov := &explore.Coverage{}
	for _, cw := range words {
		if err := cov.SetWord(cw.I, cw.W); err != nil {
			return nil, err
		}
	}
	return cov, nil
}
