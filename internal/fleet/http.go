package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"pfi/internal/journal"
	"pfi/internal/script"
)

// RPCPath is the coordinator's RPC endpoint: one POSTed envelope frame
// per request, one frame per response — the same frames the stdio
// transport carries, so both run the identical handler core.
const RPCPath = "/v1/fleet"

// Status is the coordinator's externally visible state, served as JSON
// from /status on a long-running server.
type Status struct {
	Job      string `json:"job"`
	Version  int    `json:"version"`
	Draining bool   `json:"draining"`
	UptimeS  int64  `json:"uptime_s"`
	Stats    Stats  `json:"stats"`
}

// StatusNow captures the coordinator's current status.
func (c *Coordinator) StatusNow() Status {
	return Status{
		Job:      c.job.Kind,
		Version:  ProtocolVersion,
		Draining: c.Draining(),
		UptimeS:  int64(time.Since(c.start).Seconds()),
		Stats:    c.Stats(),
	}
}

// Handler returns the coordinator's HTTP surface:
//
//	POST /v1/fleet  — the worker RPC (one envelope frame per request)
//	GET  /status    — job, version, drain state, and counters as JSON
//	GET  /metrics   — flat {"fleet_<counter>": n} JSON for scrapers
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(RPCPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		frame, err := io.ReadAll(io.LimitReader(r.Body, maxFrame))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(c.Handle(bytes.TrimSpace(frame)))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.StatusNow())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := c.Stats()
		m := map[string]int{
			"fleet_rounds":       s.Rounds,
			"fleet_units":        s.Units,
			"fleet_units_done":   s.UnitsDone,
			"fleet_reassigned":   s.Reassigned,
			"fleet_contained":    s.Contained,
			"fleet_stale":        s.Stale,
			"fleet_cells":        s.Cells,
			"fleet_bad_frames":   s.BadFrames,
			"fleet_workers_seen": s.WorkersSeen,
			"fleet_workers_lost": s.WorkersLost,
		}
		// Crash-safety telemetry: write-ahead-log volume, resumed work,
		// and worker reconnect churn (process-local, like script stats).
		js := journal.GetStats()
		m["journal_records_written"] = int(js.RecordsWritten)
		m["journal_bytes"] = int(js.BytesWritten)
		m["resume_cells_skipped"] = int(js.ResumedSkipped)
		m["worker_reconnect_backoffs"] = int(ReconnectBackoffs())
		// Script-engine telemetry: coordinator-local counters from the AOT
		// optimizer and program caches (spawned/remote workers keep their
		// own; these cover in-process scenario work).
		ss := script.Stats()
		for k, v := range map[string]uint64{
			"script_compiles":     ss.Compiles,
			"script_optimized":    ss.Optimized,
			"script_recompiles":   ss.Recompiles,
			"script_deopts":       ss.Deopts,
			"script_specialized":  ss.Specialized,
			"script_fused_ops":    ss.FusedOps,
			"script_folded_ops":   ss.FoldedOps,
			"script_dce_ops":      ss.DCEOps,
			"script_cache_hits":   ss.CacheHits,
			"script_cache_misses": ss.CacheMisses,
		} {
			m[k] = int(v)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m)
	})
	return mux
}

// Server is a coordinator bound to a listening HTTP socket.
type Server struct {
	Addr string // actual listen address, e.g. "127.0.0.1:41373"
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts the coordinator's HTTP server on addr (":0" picks a free
// port; the resolved address is in Server.Addr). Remote workers connect
// with DialHTTP; humans probe /status and /metrics.
func (c *Coordinator) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: c.Handler()}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Close stops accepting connections and waits for the serve loop to
// return. In-flight worker requests are cut; the coordinator's drain
// state, not this, is what ends a fleet cleanly.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// httpConn is the worker side of the HTTP transport: each RoundTrip is
// one POST of an envelope frame to the coordinator's RPC endpoint.
type httpConn struct {
	url    string
	client *http.Client
}

// DialHTTP returns a Conn speaking the fleet protocol to the coordinator
// at base (e.g. "http://127.0.0.1:41373"). No connection is made until
// the first RoundTrip; a coordinator that is down surfaces as a
// transport error there.
func DialHTTP(base string) Conn {
	return &httpConn{url: base + RPCPath, client: &http.Client{}}
}

func (h *httpConn) RoundTrip(e Envelope) (Envelope, error) {
	frame, err := Encode(e)
	if err != nil {
		return Envelope{}, err
	}
	resp, err := h.client.Post(h.url, "application/json", bytes.NewReader(frame))
	if err != nil {
		return Envelope{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFrame))
	if err != nil {
		return Envelope{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Envelope{}, fmt.Errorf("fleet: coordinator returned %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return Decode(bytes.TrimSpace(body))
}

func (h *httpConn) Close() error { return nil }
