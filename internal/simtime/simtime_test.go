package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.After(3*time.Second, "c", func() { got = append(got, s.Now()) })
	s.After(1*time.Second, "a", func() { got = append(got, s.Now()) })
	s.After(2*time.Second, "b", func() { got = append(got, s.Now()) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []Time{Time(1 * time.Second), Time(2 * time.Second), Time(3 * time.Second)}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, "tie", func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v; want FIFO", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	ev := s.After(time.Second, "x", func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending after scheduling")
	}
	if !s.Cancel(ev) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if ev.Pending() {
		t.Fatal("event still pending after Cancel")
	}
	if s.Cancel(ev) {
		t.Fatal("second Cancel returned true")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelNilIsNoop(t *testing.T) {
	s := NewScheduler()
	if s.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler()
	var times []Time
	var ev *Event
	ev = s.Every(2*time.Second, "tick", func() {
		times = append(times, s.Now())
		if len(times) == 4 {
			s.Cancel(ev)
		}
	})
	s.RunUntil(Time(100 * time.Second))
	if len(times) != 4 {
		t.Fatalf("periodic event fired %d times, want 4", len(times))
	}
	for i, at := range times {
		want := Time(time.Duration(i+1) * 2 * time.Second)
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	s := NewScheduler()
	s.After(time.Second, "x", func() {})
	s.RunUntil(Time(5 * time.Second))
	if s.Now() != Time(5*time.Second) {
		t.Fatalf("clock at %v after RunUntil, want 5s", s.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	s := NewScheduler()
	s.RunFor(3 * time.Second)
	s.RunFor(4 * time.Second)
	if s.Now() != Time(7*time.Second) {
		t.Fatalf("clock at %v, want 7s", s.Now())
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := NewScheduler()
	s.RunFor(10 * time.Second)
	var at Time
	s.At(Time(2*time.Second), "late", func() { at = s.Now() })
	s.Run()
	if at != Time(10*time.Second) {
		t.Fatalf("past event fired at %v, want clamped to 10s", at)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	var chain []string
	s.After(time.Second, "first", func() {
		chain = append(chain, "first")
		s.After(time.Second, "second", func() {
			chain = append(chain, "second")
		})
	})
	s.Run()
	if len(chain) != 2 || chain[1] != "second" {
		t.Fatalf("chained events %v, want [first second]", chain)
	}
	if s.Now() != Time(2*time.Second) {
		t.Fatalf("clock %v, want 2s", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i+1)*time.Second, "n", func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	n := s.Run()
	if n != 3 || count != 3 {
		t.Fatalf("Run executed %d events (count %d), want 3", n, count)
	}
}

func TestReschedule(t *testing.T) {
	s := NewScheduler()
	var at Time
	ev := s.After(time.Second, "x", func() { at = s.Now() })
	s.Reschedule(ev, 5*time.Second)
	s.Run()
	if at != Time(5*time.Second) {
		t.Fatalf("rescheduled event fired at %v, want 5s", at)
	}
}

func TestRescheduleFiredEventRearms(t *testing.T) {
	s := NewScheduler()
	count := 0
	ev := s.After(time.Second, "x", func() { count++ })
	s.Run()
	s.Reschedule(ev, time.Second)
	s.Run()
	if count != 2 {
		t.Fatalf("event fired %d times, want 2 after re-arm", count)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil fn) did not panic")
		}
	}()
	NewScheduler().After(time.Second, "bad", nil)
}

func TestNonPositivePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewScheduler().Every(0, "bad", func() {})
}

// Property: for any set of random delays, events fire in nondecreasing time
// order and the final clock equals the maximum delay.
func TestPropertyOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		s := NewScheduler()
		var fired []Time
		for _, d := range delays {
			s.After(time.Duration(d)*time.Millisecond, "p", func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		max := Time(0)
		for _, d := range delays {
			if at := Time(time.Duration(d) * time.Millisecond); at > max {
				max = at
			}
		}
		return s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the others firing.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		total := int(n%50) + 1
		fired := make([]bool, total)
		evs := make([]*Event, total)
		for i := 0; i < total; i++ {
			i := i
			evs[i] = s.After(time.Duration(rng.Intn(1000))*time.Millisecond, "p", func() {
				fired[i] = true
			})
		}
		cancelled := make([]bool, total)
		for i := 0; i < total; i++ {
			if rng.Intn(2) == 0 {
				s.Cancel(evs[i])
				cancelled[i] = true
			}
		}
		s.Run()
		for i := 0; i < total; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%100)*time.Millisecond, "b", func() {})
		if s.Len() > 1024 {
			s.RunUntil(s.Now().Add(50 * time.Millisecond))
		}
	}
	s.Run()
}
