// Package simtime provides a deterministic discrete-event virtual clock.
//
// Every protocol timer and network delivery in this repository is an event
// scheduled on a Scheduler. Time advances only when the scheduler runs the
// next event, so experiments that span hours of protocol time (for example
// TCP keep-alive probing at 7200-second intervals) complete in milliseconds
// of wall-clock time while exercising the identical code paths.
//
// Determinism contract: events fire in (time, sequence) order. Two events
// scheduled for the same instant fire in the order they were scheduled, so a
// seeded experiment replays bit-identically.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant on the virtual clock, measured as a Duration since the
// start of the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration re-exports time.Duration for call sites that want to be explicit
// about operating on virtual durations.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as a floating-point number of virtual seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// String formats the instant as a duration since the epoch, e.g. "1m4s".
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel or reschedule it.
type Event struct {
	when   Time
	seq    uint64
	index  int // heap index, -1 when not queued
	fn     func()
	name   string
	period Duration // 0 for one-shot events
}

// When reports the instant the event will fire (or last fired).
func (e *Event) When() Time { return e.when }

// Name reports the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Pending reports whether the event is still queued to fire.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Scheduler is a discrete-event executor. It is not safe for concurrent use;
// the entire simulation is single-threaded by design (see package comment).
type Scheduler struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	stopped bool

	stepHook     func()
	scheduleHook func()
}

// SetStepHook installs fn to run at the start of every executed Step,
// before the event's callback fires. Watchdogs use it to meter progress;
// fn may panic to abort a Run in progress (the running flag is restored
// by RunUntil's defer, so the scheduler stays usable after recovery).
// A nil fn removes the hook.
func (s *Scheduler) SetStepHook(fn func()) { s.stepHook = fn }

// SetScheduleHook installs fn to run whenever a fresh event is
// registered via At/After/Every. Periodic re-arms inside Step and
// Reschedule's re-push of an existing event do not count: the hook
// meters new registrations, not queue churn. A nil fn removes the hook.
func (s *Scheduler) SetScheduleHook(fn func()) { s.scheduleHook = fn }

// NewScheduler returns a scheduler whose clock reads the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Peek reports the instant of the next pending event without running it.
func (s *Scheduler) Peek() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].when, true
}

// AdvanceTo moves the clock forward to t without running events (events
// due at or before t fire on the next Step/Run). It is used by real-time
// adapters that map the virtual clock onto the wall clock; it refuses to
// move backwards.
func (s *Scheduler) AdvanceTo(t Time) {
	if t > s.now {
		s.now = t
	}
}

// At schedules fn to run at the absolute instant t. Scheduling in the past
// (before Now) fires the event at the current instant instead: the event
// queue never travels backwards.
func (s *Scheduler) At(t Time, name string, fn func()) *Event {
	if fn == nil {
		panic("simtime: nil event callback")
	}
	if s.scheduleHook != nil {
		s.scheduleHook()
	}
	if t < s.now {
		t = s.now
	}
	ev := &Event{when: t, seq: s.nextSeq(), fn: fn, name: name, index: -1}
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current instant. A non-positive d
// fires at the current instant (still asynchronously, via the queue).
func (s *Scheduler) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), name, fn)
}

// Every schedules fn to run every period, first firing after one period.
// Cancel stops future firings.
func (s *Scheduler) Every(period Duration, name string, fn func()) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: non-positive period %v for %q", period, name))
	}
	ev := s.After(period, name, fn)
	ev.period = period
	return ev
}

// Cancel removes ev from the queue. Cancelling a nil, fired, or already
// cancelled event is a no-op. It reports whether the event was pending.
func (s *Scheduler) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, ev.index)
	ev.index = -1
	ev.period = 0
	return true
}

// Reschedule moves a pending one-shot event to fire d after now. If the
// event already fired it is re-armed.
func (s *Scheduler) Reschedule(ev *Event, d Duration) {
	if ev == nil {
		return
	}
	s.Cancel(ev)
	if d < 0 {
		d = 0
	}
	ev.when = s.now.Add(d)
	ev.seq = s.nextSeq()
	heap.Push(&s.queue, ev)
}

// Step runs the single next event, advancing the clock to its instant.
// It reports false when the queue is empty or the scheduler was stopped.
func (s *Scheduler) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	if s.stepHook != nil {
		s.stepHook()
	}
	ev := heap.Pop(&s.queue).(*Event)
	ev.index = -1
	if ev.when > s.now {
		s.now = ev.when // never backwards (AdvanceTo may have passed it)
	}
	if ev.period > 0 {
		ev.when = s.now.Add(ev.period)
		ev.seq = s.nextSeq()
		heap.Push(&s.queue, ev)
	}
	ev.fn()
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the number of events executed.
func (s *Scheduler) Run() int {
	return s.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events whose instant is <= deadline, then advances the
// clock to the deadline (if it is beyond the last event run). It returns the
// number of events executed.
func (s *Scheduler) RunUntil(deadline Time) int {
	if s.running {
		panic("simtime: re-entrant Run")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	n := 0
	for !s.stopped && len(s.queue) > 0 && s.queue[0].when <= deadline {
		s.Step()
		n++
	}
	if !s.stopped && s.now < deadline && deadline < Time(1<<62-1) {
		s.now = deadline
	}
	return n
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Scheduler) RunFor(d Duration) int {
	return s.RunUntil(s.now.Add(d))
}

// Stop halts a Run/RunUntil in progress after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

func (s *Scheduler) nextSeq() uint64 {
	s.seq++
	return s.seq
}

// --- snapshot / restore ------------------------------------------------

// savedEvent retains a pending event together with the fields Step, Cancel,
// and Reschedule mutate in place. Keeping the *Event pointer (rather than
// cloning) is what makes restore-in-place work: timer owners (TCP
// connections, RUDP retransmitters, ...) hold these pointers in their own
// state, and closures already scheduled against the world stay valid.
type savedEvent struct {
	ev     *Event
	when   Time
	seq    uint64
	period Duration
}

// schedState is the mutable state of a Scheduler at one instant.
type schedState struct {
	now    Time
	seq    uint64
	events []savedEvent
}

// SnapshotState captures the clock, the sequence counter, and the pending
// queue. It must be called between events (never from inside a running
// Step). The step/schedule hooks are observers, not simulation state, so
// they are deliberately excluded: callers re-attach their own watchdogs
// after a restore.
func (s *Scheduler) SnapshotState() any {
	st := &schedState{now: s.now, seq: s.seq, events: make([]savedEvent, len(s.queue))}
	for i, ev := range s.queue {
		st.events[i] = savedEvent{ev: ev, when: ev.when, seq: ev.seq, period: ev.period}
	}
	return st
}

// RestoreState rewinds the scheduler to a state captured by SnapshotState.
// Events scheduled after the snapshot simply leave the queue (their owners
// are rewound by their own restores); events that fired or were cancelled
// since the snapshot are re-queued at their saved instant. The saved queue
// slice order was a valid heap when captured, so it is installed verbatim.
func (s *Scheduler) RestoreState(state any) {
	st := state.(*schedState)
	// Un-queue everything currently pending so stale pointers report
	// !Pending() and a Cancel on one stays a no-op.
	for _, ev := range s.queue {
		ev.index = -1
	}
	s.queue = s.queue[:0]
	for i, se := range st.events {
		se.ev.when, se.ev.seq, se.ev.period = se.when, se.seq, se.period
		se.ev.index = i
		s.queue = append(s.queue, se.ev)
	}
	s.now, s.seq = st.now, st.seq
	s.stopped = false
}

// eventQueue is a binary heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
