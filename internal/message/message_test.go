package message

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewCopiesData(t *testing.T) {
	src := []byte{1, 2, 3}
	m := New(src)
	src[0] = 99
	if m.Bytes()[0] != 1 {
		t.Fatal("New did not copy its input")
	}
}

func TestPushPopRoundTrip(t *testing.T) {
	m := NewString("payload")
	hdr := []byte{0xAA, 0xBB, 0xCC}
	m.Push(hdr)
	if m.Len() != 10 {
		t.Fatalf("Len after push = %d, want 10", m.Len())
	}
	got, err := m.Pop(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, hdr) {
		t.Fatalf("popped %x, want %x", got, hdr)
	}
	if string(m.Bytes()) != "payload" {
		t.Fatalf("payload corrupted: %q", m.Bytes())
	}
}

func TestPushEmptyHeaderNoop(t *testing.T) {
	m := NewString("x")
	m.Push(nil)
	if m.Len() != 1 {
		t.Fatal("Push(nil) changed length")
	}
}

func TestNestedHeaders(t *testing.T) {
	m := NewString("data")
	m.Push([]byte("tcp:"))
	m.Push([]byte("ip:"))
	m.Push([]byte("eth:"))
	for _, want := range []string{"eth:", "ip:", "tcp:"} {
		h, err := m.Pop(len(want))
		if err != nil {
			t.Fatal(err)
		}
		if string(h) != want {
			t.Fatalf("popped %q, want %q", h, want)
		}
	}
	if string(m.Bytes()) != "data" {
		t.Fatalf("payload = %q, want data", m.Bytes())
	}
}

func TestPopTooMuch(t *testing.T) {
	m := NewString("ab")
	if _, err := m.Pop(3); err == nil {
		t.Fatal("Pop(3) of 2-byte message did not fail")
	}
	if _, err := m.Pop(-1); err == nil {
		t.Fatal("Pop(-1) did not fail")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	m := NewString("abcdef")
	p, err := m.Peek(3)
	if err != nil || string(p) != "abc" {
		t.Fatalf("Peek = %q, %v", p, err)
	}
	if m.Len() != 6 {
		t.Fatal("Peek consumed bytes")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewString("abc")
	m.SetAttr("k", 1)
	c := m.Clone()
	if c.ID() == m.ID() {
		t.Fatal("clone shares ID")
	}
	if c.Origin() != m.ID() {
		t.Fatalf("clone origin %d, want %d", c.Origin(), m.ID())
	}
	if err := c.SetByte(0, 'z'); err != nil {
		t.Fatal(err)
	}
	if m.Bytes()[0] != 'a' {
		t.Fatal("mutating clone changed original")
	}
	c.SetAttr("k", 2)
	if v, _ := m.Attr("k"); v != 1 {
		t.Fatal("clone attr map aliases original")
	}
}

func TestCloneOfCloneKeepsOrigin(t *testing.T) {
	m := NewString("abc")
	c2 := m.Clone().Clone()
	if c2.Origin() != m.ID() {
		t.Fatalf("grand-clone origin %d, want %d", c2.Origin(), m.ID())
	}
}

func TestSetByteAndByteAt(t *testing.T) {
	m := NewString("abc")
	if err := m.SetByte(1, 'X'); err != nil {
		t.Fatal(err)
	}
	b, err := m.ByteAt(1)
	if err != nil || b != 'X' {
		t.Fatalf("ByteAt = %q, %v", b, err)
	}
	if err := m.SetByte(3, 0); err == nil {
		t.Fatal("SetByte out of range did not fail")
	}
	if _, err := m.ByteAt(-1); err == nil {
		t.Fatal("ByteAt(-1) did not fail")
	}
}

func TestTruncate(t *testing.T) {
	m := NewString("abcdef")
	if err := m.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if string(m.Bytes()) != "ab" {
		t.Fatalf("after truncate: %q", m.Bytes())
	}
	if err := m.Truncate(10); err == nil {
		t.Fatal("Truncate beyond length did not fail")
	}
}

func TestAttrs(t *testing.T) {
	m := New(nil)
	if _, ok := m.Attr("missing"); ok {
		t.Fatal("Attr on empty map returned ok")
	}
	m.SetAttr("type", "ACK")
	v, ok := m.Attr("type")
	if !ok || v != "ACK" {
		t.Fatalf("Attr = %v, %v", v, ok)
	}
}

func TestIDsUnique(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		id := New(nil).ID()
		if seen[id] {
			t.Fatalf("duplicate message ID %d", id)
		}
		seen[id] = true
	}
}

// Property: Push then Pop of any header over any payload is the identity.
func TestPropertyPushPopInverse(t *testing.T) {
	f := func(hdr, payload []byte) bool {
		m := New(payload)
		m.Push(hdr)
		got, err := m.Pop(len(hdr))
		if err != nil {
			return false
		}
		return bytes.Equal(got, hdr) && bytes.Equal(m.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a stack of pushed headers pops back in LIFO order.
func TestPropertyHeaderStackLIFO(t *testing.T) {
	f := func(hdrs [][]byte, payload []byte) bool {
		if len(hdrs) > 8 {
			hdrs = hdrs[:8]
		}
		m := New(payload)
		for _, h := range hdrs {
			m.Push(h)
		}
		for i := len(hdrs) - 1; i >= 0; i-- {
			got, err := m.Pop(len(hdrs[i]))
			if err != nil || !bytes.Equal(got, hdrs[i]) {
				return false
			}
		}
		return bytes.Equal(m.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	hdr := NewWriter(32).
		U8(7).U16(513).U32(1 << 30).U64(1 << 40).
		Bytes([]byte("tail")).Done()
	r := NewReader(hdr)
	if v := r.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := r.U16(); v != 513 {
		t.Fatalf("U16 = %d", v)
	}
	if v := r.U32(); v != 1<<30 {
		t.Fatalf("U32 = %d", v)
	}
	if v := r.U64(); v != 1<<40 {
		t.Fatalf("U64 = %d", v)
	}
	if tail := r.Take(4); string(tail) != "tail" {
		t.Fatalf("Take = %q", tail)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U32()
	if r.Err() == nil {
		t.Fatal("short U32 did not set error")
	}
	if v := r.U8(); v != 0 {
		t.Fatal("read after error returned data")
	}
}

// Property: Writer/Reader round-trip arbitrary field values.
func TestPropertyWriterReader(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64) bool {
		buf := NewWriter(15).U8(a).U16(b).U32(c).U64(d).Done()
		r := NewReader(buf)
		return r.U8() == a && r.U16() == b && r.U32() == c && r.U64() == d && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 512)
	hdr := bytes.Repeat([]byte("h"), 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(payload)
		m.Push(hdr)
		if _, err := m.Pop(len(hdr)); err != nil {
			b.Fatal(err)
		}
	}
}
