// Package message implements the x-Kernel-style message abstraction used
// throughout the protocol stack.
//
// A Message is a byte payload onto which each protocol layer pushes its
// header on the way down the stack and from which each layer pops its header
// on the way up. Messages also carry out-of-band attributes (a small typed
// map) so layers and the PFI tool can annotate packets without touching the
// wire bytes, and a monotone ID so traces can follow one packet through
// clone/duplicate operations.
package message

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

var lastID atomic.Uint64

// ID uniquely identifies a message within a process. Clones receive fresh
// IDs but remember their origin.
type ID uint64

// Message is a mutable packet travelling through a protocol stack. The zero
// value is not useful; use New.
type Message struct {
	id     ID
	origin ID // ID of the message this one was cloned from, or its own ID
	ver    uint32
	buf    []byte
	attrs  map[string]any
}

// Version counts content mutations (bytes or attributes). Batch pipelines
// use it to revalidate work derived from a message's content — recognition
// done ahead of time stays valid exactly while the version is unchanged.
func (m *Message) Version() uint32 { return m.ver }

// New builds a message whose payload is a copy of data.
func New(data []byte) *Message {
	id := ID(lastID.Add(1))
	m := &Message{id: id, origin: id}
	if len(data) > 0 {
		m.buf = append(m.buf, data...)
	}
	return m
}

// NewString builds a message from a string payload.
func NewString(s string) *Message { return New([]byte(s)) }

// ID returns the message's unique identifier.
func (m *Message) ID() ID { return m.id }

// Origin returns the ID of the message this one was cloned from; for an
// original message it equals ID().
func (m *Message) Origin() ID { return m.origin }

// Len returns the current total length in bytes (headers + payload).
func (m *Message) Len() int { return len(m.buf) }

// Bytes returns the message contents. The slice aliases internal storage;
// callers must not retain it across mutations.
func (m *Message) Bytes() []byte { return m.buf }

// CopyBytes returns an independent copy of the message contents.
func (m *Message) CopyBytes() []byte {
	out := make([]byte, len(m.buf))
	copy(out, m.buf)
	return out
}

// Clone returns a deep copy with a fresh ID but the same origin chain.
// Attributes are shallow-copied key-by-key.
func (m *Message) Clone() *Message {
	c := &Message{
		id:     ID(lastID.Add(1)),
		origin: m.origin,
		buf:    append([]byte(nil), m.buf...),
	}
	if m.attrs != nil {
		c.attrs = make(map[string]any, len(m.attrs))
		for k, v := range m.attrs {
			c.attrs[k] = v
		}
	}
	return c
}

// State is a saved copy of a message's mutable content (payload bytes and
// attributes). The identity fields (ID, Origin) are immutable and excluded.
// World snapshots use it to rewind in-flight and held messages in place:
// the *Message pointer — captured by delivery closures and retransmission
// queues — stays the same, only its content rolls back.
type State struct {
	buf   []byte
	attrs map[string]any
}

// SaveState captures the message's current content.
func (m *Message) SaveState() State {
	st := State{buf: append([]byte(nil), m.buf...)}
	if m.attrs != nil {
		st.attrs = make(map[string]any, len(m.attrs))
		for k, v := range m.attrs {
			st.attrs[k] = v
		}
	}
	return st
}

// RestoreState rewinds the message to a previously saved content. The saved
// state stays valid for repeated restores.
func (m *Message) RestoreState(st State) {
	m.ver++
	m.buf = append(m.buf[:0], st.buf...)
	if st.attrs == nil {
		m.attrs = nil
		return
	}
	m.attrs = make(map[string]any, len(st.attrs))
	for k, v := range st.attrs {
		m.attrs[k] = v
	}
}

// Push prepends hdr to the message, growing it by len(hdr). This is the
// action a layer takes when sending a message down the stack.
func (m *Message) Push(hdr []byte) {
	if len(hdr) == 0 {
		return
	}
	m.ver++
	m.buf = append(m.buf, make([]byte, len(hdr))...)
	copy(m.buf[len(hdr):], m.buf[:len(m.buf)-len(hdr)])
	copy(m.buf, hdr)
}

// Pop removes and returns the first n bytes (a layer's header) on the way up
// the stack. It fails if the message is shorter than n.
func (m *Message) Pop(n int) ([]byte, error) {
	if n < 0 || n > len(m.buf) {
		return nil, fmt.Errorf("message: pop %d bytes from %d-byte message", n, len(m.buf))
	}
	m.ver++
	hdr := make([]byte, n)
	copy(hdr, m.buf[:n])
	m.buf = m.buf[:copy(m.buf, m.buf[n:])]
	return hdr, nil
}

// Peek returns a copy of the first n bytes without consuming them.
func (m *Message) Peek(n int) ([]byte, error) {
	if n < 0 || n > len(m.buf) {
		return nil, fmt.Errorf("message: peek %d bytes from %d-byte message", n, len(m.buf))
	}
	hdr := make([]byte, n)
	copy(hdr, m.buf[:n])
	return hdr, nil
}

// SetByte overwrites the byte at offset off — the primitive behind message
// corruption faults.
func (m *Message) SetByte(off int, b byte) error {
	if off < 0 || off >= len(m.buf) {
		return fmt.Errorf("message: set byte at %d in %d-byte message", off, len(m.buf))
	}
	m.ver++
	m.buf[off] = b
	return nil
}

// ByteAt returns the byte at offset off.
func (m *Message) ByteAt(off int) (byte, error) {
	if off < 0 || off >= len(m.buf) {
		return 0, fmt.Errorf("message: byte at %d in %d-byte message", off, len(m.buf))
	}
	return m.buf[off], nil
}

// Truncate shortens the message to n bytes.
func (m *Message) Truncate(n int) error {
	if n < 0 || n > len(m.buf) {
		return fmt.Errorf("message: truncate to %d bytes from %d", n, len(m.buf))
	}
	m.ver++
	m.buf = m.buf[:n]
	return nil
}

// SetAttr attaches an out-of-band attribute. Attributes travel with the
// message through the local stack but are not serialized onto the wire.
func (m *Message) SetAttr(key string, value any) {
	m.ver++
	if m.attrs == nil {
		m.attrs = make(map[string]any)
	}
	m.attrs[key] = value
}

// Attr reads an out-of-band attribute.
func (m *Message) Attr(key string) (any, bool) {
	v, ok := m.attrs[key]
	return v, ok
}

// String renders a short diagnostic form.
func (m *Message) String() string {
	n := len(m.buf)
	if n <= 16 {
		return fmt.Sprintf("msg#%d(%d bytes % x)", m.id, n, m.buf)
	}
	return fmt.Sprintf("msg#%d(%d bytes % x…)", m.id, n, m.buf[:16])
}

// Writer builds headers field by field in network byte order. It is a
// convenience for protocol codecs.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// U8 appends a byte.
func (w *Writer) U8(v uint8) *Writer { w.buf = append(w.buf, v); return w }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// Bytes appends raw bytes.
func (w *Writer) Bytes(p []byte) *Writer { w.buf = append(w.buf, p...); return w }

// Done returns the accumulated header.
func (w *Writer) Done() []byte { return w.buf }

// Reader consumes headers field by field in network byte order. Errors are
// sticky: after the first short read every subsequent call returns zero and
// Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps p for reading. The reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("message: short read: need %d bytes, have %d", n, len(r.buf)-r.off)
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// Take reads n raw bytes (aliasing the underlying buffer).
func (r *Reader) Take(n int) []byte { return r.take(n) }
