package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Options configures a campaign sweep.
type Options struct {
	// Workers is the worker-pool size. Values <= 1 run the sweep serially
	// in the calling goroutine — exactly the classic Run behavior.
	Workers int
	// OnVerdict, when non-nil, observes each verdict as its case completes
	// (completion order, not generation order — under parallelism cases
	// finish out of order). Calls are serialized; no locking is needed.
	OnVerdict func(Verdict)
	// Context aborts the sweep when canceled: no new cases start, in-flight
	// cases finish, and the completed verdicts are returned along with the
	// context's error. Nil means never canceled.
	Context context.Context
}

// RunStats summarizes a sweep's outcome and throughput.
type RunStats struct {
	// Cases counts completed cases (less than the matrix size if canceled).
	Cases   int
	Passed  int
	Failed  int
	Errored int
	// Workers is the pool size the sweep actually used.
	Workers int
	// Elapsed is the total wall-clock sweep duration.
	Elapsed time.Duration
	// CasesPerSecond is the sweep throughput (Cases / Elapsed).
	CasesPerSecond float64
}

// String renders the stats as a one-line report.
func (s RunStats) String() string {
	return fmt.Sprintf("swept %d cases in %s (%.1f cases/s, %d worker(s))",
		s.Cases, s.Elapsed.Round(time.Millisecond), s.CasesPerSecond, s.Workers)
}

// RunParallel executes every generated case against the scenario, fanning
// cases out across opts.Workers goroutines. Each case is an independent
// deterministic simulation (the scenario builds a fresh world per call), so
// the verdict slice is identical for every worker count; only wall-clock
// time changes. Verdicts are returned in generation order regardless of
// completion order.
func RunParallel(spec Spec, scenario Scenario, opts Options) ([]Verdict, RunStats, error) {
	cases, err := Generate(spec)
	if err != nil {
		return nil, RunStats{}, err
	}
	return runCases(cases, scenario, opts)
}

func runCases(cases []Case, scenario Scenario, opts Options) ([]Verdict, RunStats, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(cases) {
		workers = max(len(cases), 1)
	}
	start := time.Now()
	verdicts := make([]Verdict, len(cases))
	done := make([]bool, len(cases))

	runOne := func(i int) Verdict {
		cs := time.Now()
		ok, note, err := scenario(cases[i])
		return Verdict{Case: cases[i], OK: ok, Note: note, Err: err, Elapsed: time.Since(cs)}
	}

	if workers == 1 {
		for i := range cases {
			if err := ctx.Err(); err != nil {
				return finish(verdicts, done, start, 1, err)
			}
			verdicts[i] = runOne(i)
			done[i] = true
			if opts.OnVerdict != nil {
				opts.OnVerdict(verdicts[i])
			}
		}
		return finish(verdicts, done, start, 1, nil)
	}

	var (
		mu   sync.Mutex // guards verdicts/done and serializes OnVerdict
		wg   sync.WaitGroup
		feed = make(chan int)
	)
	go func() {
		defer close(feed)
		for i := range cases {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				v := runOne(i)
				mu.Lock()
				verdicts[i] = v
				done[i] = true
				if opts.OnVerdict != nil {
					opts.OnVerdict(v)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return finish(verdicts, done, start, workers, ctx.Err())
}

// finish compacts completed verdicts (preserving generation order) and
// computes the sweep stats.
func finish(verdicts []Verdict, done []bool, start time.Time, workers int, err error) ([]Verdict, RunStats, error) {
	out := make([]Verdict, 0, len(verdicts))
	for i := range verdicts {
		if done[i] {
			out = append(out, verdicts[i])
		}
	}
	stats := RunStats{Cases: len(out), Workers: workers, Elapsed: time.Since(start)}
	for i := range out {
		switch {
		case out[i].Err != nil:
			stats.Errored++
		case out[i].OK:
			stats.Passed++
		default:
			stats.Failed++
		}
	}
	if s := stats.Elapsed.Seconds(); s > 0 {
		stats.CasesPerSecond = float64(stats.Cases) / s
	}
	return out, stats, err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
