package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Options configures a campaign sweep.
type Options struct {
	// Workers is the worker-pool size. Values <= 1 run the sweep serially
	// in the calling goroutine — exactly the classic Run behavior.
	Workers int
	// OnVerdict, when non-nil, observes each verdict as its case completes
	// (completion order, not generation order — under parallelism cases
	// finish out of order). Calls are serialized; no locking is needed.
	OnVerdict func(Verdict)
	// Context aborts the sweep when canceled: no new cases start, in-flight
	// cases finish, and the completed verdicts are returned along with the
	// context's error. Nil means never canceled.
	Context context.Context
}

// RunStats summarizes a sweep's outcome and throughput.
type RunStats struct {
	// Cases counts completed cases (less than the matrix size if canceled).
	Cases   int
	Passed  int
	Failed  int
	Errored int
	// Workers is the pool size the sweep actually used.
	Workers int
	// Elapsed is the total wall-clock sweep duration.
	Elapsed time.Duration
	// CasesPerSecond is the sweep throughput (Cases / Elapsed).
	CasesPerSecond float64
}

// String renders the stats as a one-line report.
func (s RunStats) String() string {
	return fmt.Sprintf("swept %d cases in %s (%.1f cases/s, %d worker(s))",
		s.Cases, s.Elapsed.Round(time.Millisecond), s.CasesPerSecond, s.Workers)
}

// RunParallel executes every generated case against the scenario, fanning
// cases out across opts.Workers goroutines. Each case is an independent
// deterministic simulation (the scenario builds a fresh world per call), so
// the verdict slice is identical for every worker count; only wall-clock
// time changes. Verdicts are returned in generation order regardless of
// completion order.
func RunParallel(spec Spec, scenario Scenario, opts Options) ([]Verdict, RunStats, error) {
	cases, err := Generate(spec)
	if err != nil {
		return nil, RunStats{}, err
	}
	return runCases(cases, scenario, opts)
}

func runCases(cases []Case, scenario Scenario, opts Options) ([]Verdict, RunStats, error) {
	workers := poolSize(opts.Workers, len(cases))
	start := time.Now()
	verdicts := make([]Verdict, len(cases))
	done := make([]bool, len(cases))

	var mu sync.Mutex // guards verdicts/done and serializes OnVerdict
	err := ForEach(opts.Context, workers, len(cases), func(i int) {
		cs := time.Now()
		ok, note, err := scenario(cases[i])
		v := Verdict{Case: cases[i], OK: ok, Note: note, Err: err, Elapsed: time.Since(cs)}
		mu.Lock()
		verdicts[i] = v
		done[i] = true
		if opts.OnVerdict != nil {
			opts.OnVerdict(v)
		}
		mu.Unlock()
	})
	return finish(verdicts, done, start, workers, err)
}

// poolSize clamps a requested worker count to [1, n].
func poolSize(workers, n int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = max(n, 1)
	}
	return workers
}

// ForEach is the campaign worker pool, exported for other sweep-shaped
// workloads (the conformance runner fans scenarios out through it). It runs
// fn(0..n-1) across workers goroutines and returns when every started call
// has finished. A canceled context stops new indices from being handed out
// (in-flight calls complete) and is returned as the error. fn is responsible
// for its own synchronization; with workers <= 1 every call happens in the
// calling goroutine, in order.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workers = poolSize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := 0; i < n; i++ {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// finish compacts completed verdicts (preserving generation order) and
// computes the sweep stats.
func finish(verdicts []Verdict, done []bool, start time.Time, workers int, err error) ([]Verdict, RunStats, error) {
	out := make([]Verdict, 0, len(verdicts))
	for i := range verdicts {
		if done[i] {
			out = append(out, verdicts[i])
		}
	}
	stats := RunStats{Cases: len(out), Workers: workers, Elapsed: time.Since(start)}
	for i := range out {
		switch {
		case out[i].Err != nil:
			stats.Errored++
		case out[i].OK:
			stats.Passed++
		default:
			stats.Failed++
		}
	}
	if s := stats.Elapsed.Seconds(); s > 0 {
		stats.CasesPerSecond = float64(stats.Cases) / s
	}
	return out, stats, err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
