package campaign

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"pfi/internal/harden"
	"pfi/internal/journal"
)

// Options configures a campaign sweep.
type Options struct {
	// Workers is the worker-pool size. Values <= 1 run the sweep serially
	// in the calling goroutine — exactly the classic Run behavior.
	Workers int
	// OnVerdict, when non-nil, observes each verdict as its case completes
	// (completion order, not generation order — under parallelism cases
	// finish out of order). Calls are serialized; no locking is needed.
	OnVerdict func(Verdict)
	// Context aborts the sweep when canceled: no new cases start, in-flight
	// cases finish, and the completed verdicts are returned along with the
	// context's error. Nil means never canceled.
	Context context.Context
	// Harden is the per-case isolation policy: watchdogs, budgets, and
	// retry classification. The zero value still contains panics — a
	// crashing scenario becomes one ToolFault verdict, never a dead sweep.
	Harden harden.Config
	// Repro, when non-nil, renders a case as committable scenario source
	// for quarantine repros of contained failures (needs Harden.ReproDir).
	Repro func(Case) string
	// Journal, when non-nil, streams each completed cell into a write-
	// ahead log and skips cells the log already holds: a killed sweep
	// resumed with the same journal re-runs only the missing cells, and
	// restored verdicts (including contained/quarantined ones — their
	// outcome, retry count, and repro note survive) canonicalize
	// identically to fresh ones. A journal write failure aborts the
	// sweep as a tool fault; completed work is never silently dropped.
	Journal *journal.Log
}

// RunStats summarizes a sweep's outcome and throughput.
type RunStats struct {
	// Cases counts completed cases (less than the matrix size if canceled).
	Cases   int
	Passed  int
	Failed  int
	Errored int
	// Crashes counts ToolFault verdicts (scenario panicked; contained).
	Crashes int
	// Timeouts counts Timeout and Livelock verdicts (watchdog tripped).
	Timeouts int
	// Retries counts extra attempts the isolation layer made to classify
	// contained failures as deterministic vs. flaky.
	Retries int
	// Resumed counts cells restored from the journal instead of re-run.
	Resumed int
	// Workers is the pool size the sweep actually used.
	Workers int
	// Elapsed is the total wall-clock sweep duration.
	Elapsed time.Duration
	// CasesPerSecond is the sweep throughput (Cases / Elapsed).
	CasesPerSecond float64
}

// String renders the stats as a one-line report.
func (s RunStats) String() string {
	line := fmt.Sprintf("swept %d cases in %s (%.1f cases/s, %d worker(s))",
		s.Cases, s.Elapsed.Round(time.Millisecond), s.CasesPerSecond, s.Workers)
	if s.Resumed > 0 {
		line += fmt.Sprintf("; resumed %d from journal", s.Resumed)
	}
	if s.Crashes > 0 || s.Timeouts > 0 || s.Retries > 0 {
		line += fmt.Sprintf("; contained %d crash(es), %d timeout/livelock(s), %d retr(ies)",
			s.Crashes, s.Timeouts, s.Retries)
	}
	return line
}

// RunParallel executes every generated case against the scenario, fanning
// cases out across opts.Workers goroutines. Each case is an independent
// deterministic simulation (the scenario builds a fresh world per call), so
// the verdict slice is identical for every worker count; only wall-clock
// time changes. Verdicts are returned in generation order regardless of
// completion order.
func RunParallel(spec Spec, scenario Scenario, opts Options) ([]Verdict, RunStats, error) {
	cases, err := Generate(spec)
	if err != nil {
		return nil, RunStats{}, err
	}
	return runCases(cases, scenario, opts)
}

func runCases(cases []Case, scenario Scenario, opts Options) ([]Verdict, RunStats, error) {
	workers := poolSize(opts.Workers, len(cases))
	start := time.Now()
	verdicts := make([]Verdict, len(cases))
	done := make([]bool, len(cases))
	hcfg := opts.Harden
	if hcfg.Context == nil {
		hcfg.Context = opts.Context
	}

	// Resume: restore journaled cells before dispatch so the pool only
	// sees the missing ones. Restored cells do not re-fire OnVerdict —
	// the observer saw them in the run that journaled them.
	resumed := 0
	if opts.Journal != nil {
		restored, err := PrepareJournal(opts.Journal, cases)
		if err != nil {
			return nil, RunStats{}, err
		}
		for i, jv := range restored {
			verdicts[i] = jv.Restore(cases[i])
			done[i] = true
		}
		resumed = len(restored)
		journal.CountResumed(resumed)
	}

	// A journal write failure must abort the sweep (ToolFault), not
	// drop completed work silently: cancel the pool and surface it.
	ctx := opts.Context
	var cancel context.CancelFunc
	var jerr error
	if opts.Journal != nil {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}

	var mu sync.Mutex // guards verdicts/done/jerr and serializes OnVerdict
	err := ForEach(ctx, workers, len(cases), func(i int) {
		if done[i] {
			return // restored from the journal
		}
		v := runCase(cases[i], scenario, hcfg, opts.Repro)
		mu.Lock()
		verdicts[i] = v
		done[i] = true
		// A cell the context watchdog aborted mid-flight is not
		// completed work — leave it out of the journal so resume
		// re-runs it cleanly instead of restoring the abort.
		ctxAborted := v.Isolation != nil && v.Isolation.Counter == "context"
		if opts.Journal != nil && jerr == nil && !ctxAborted {
			if werr := opts.Journal.Append(RecVerdict, JournalOf(i, v)); werr != nil {
				jerr = werr
				cancel()
			}
		}
		if opts.OnVerdict != nil {
			opts.OnVerdict(v)
		}
		mu.Unlock()
	})
	if jerr != nil {
		err = jerr
	} else if opts.Context != nil && opts.Context.Err() != nil {
		err = opts.Context.Err() // don't leak the internal wrapper's cancellation
	}
	out, stats, err := finish(verdicts, done, start, workers, err)
	stats.Resumed = resumed
	return out, stats, err
}

// RunCase executes one generated case through the isolation layer and
// returns its verdict — the single-cell unit of work a fleet worker
// executes for a leased shard. It is exactly what RunParallel does per
// cell, so a remotely executed case yields the same verdict as a local
// one for the same deterministic scenario and config.
func RunCase(c Case, scenario Scenario, cfg harden.Config, repro func(Case) string) Verdict {
	return runCase(c, scenario, cfg, repro)
}

// runCase executes one cell through the isolation layer and folds the
// containment record into the verdict.
func runCase(c Case, scenario Scenario, cfg harden.Config, repro func(Case) string) Verdict {
	if repro != nil {
		cfg.ReproSource = func() string { return repro(c) }
	}
	start := time.Now()
	var (
		ok   bool
		note string
		serr error
	)
	iso := harden.Run(cfg, func(m *harden.Monitor) error {
		ok, note, serr = scenario(m, c)
		return serr
	})
	v := Verdict{Case: c, OK: ok, Note: note, Err: serr, Elapsed: time.Since(start), Outcome: iso.Kind}
	if iso.Kind.Contained() {
		// The scenario never finished; its partial ok/note are meaningless.
		v.OK, v.Err, v.Note = false, iso.Err, ""
		if iso.ReproPath != "" {
			v.Note = "repro: " + iso.ReproPath
		}
	}
	if iso.Kind != harden.Pass && iso.Kind != harden.Fail {
		isoCopy := iso
		v.Isolation = &isoCopy
	}
	return v
}

// poolSize clamps a requested worker count to [1, n].
func poolSize(workers, n int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = max(n, 1)
	}
	return workers
}

// PanicError reports fn panics that ForEach contained. Every non-panicking
// index still ran to completion; the first panic is carried here with its
// stack, plus a count of how many indices panicked in total.
type PanicError struct {
	// Index is the first panicking index.
	Index int
	// Value is that panic's value.
	Value any
	// Stack is the goroutine stack captured at that panic.
	Stack string
	// Count is the total number of panicking indices.
	Count int
}

func (e *PanicError) Error() string {
	s := fmt.Sprintf("campaign: fn(%d) panicked: %v", e.Index, e.Value)
	if e.Count > 1 {
		s += fmt.Sprintf(" (and %d more panics)", e.Count-1)
	}
	return s
}

// ForEach is the campaign worker pool, exported for other sweep-shaped
// workloads (the conformance runner fans scenarios out through it). It runs
// fn(0..n-1) across workers goroutines and returns when every started call
// has finished. A canceled context stops new indices from being handed out
// (in-flight calls complete) and is returned as the error. A panicking fn
// is contained: sibling workers keep draining, every other index completes,
// and the panic surfaces as a *PanicError (a canceled context takes
// precedence). fn is responsible for its own synchronization; with
// workers <= 1 every call happens in the calling goroutine, in order.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var (
		pmu  sync.Mutex
		perr *PanicError
	)
	call := func(i int) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			pmu.Lock()
			if perr == nil {
				perr = &PanicError{Index: i, Value: p, Stack: string(debug.Stack())}
			}
			perr.Count++
			pmu.Unlock()
		}()
		fn(i)
	}
	workers = poolSize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			call(i)
		}
	} else {
		var wg sync.WaitGroup
		feed := make(chan int)
		go func() {
			defer close(feed)
			for i := 0; i < n; i++ {
				select {
				case feed <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range feed {
					call(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if perr != nil {
		return perr
	}
	return nil
}

// finish compacts completed verdicts (preserving generation order) and
// computes the sweep stats.
func finish(verdicts []Verdict, done []bool, start time.Time, workers int, err error) ([]Verdict, RunStats, error) {
	out := make([]Verdict, 0, len(verdicts))
	for i := range verdicts {
		if done[i] {
			out = append(out, verdicts[i])
		}
	}
	stats := RunStats{Cases: len(out), Workers: workers, Elapsed: time.Since(start)}
	for i := range out {
		switch {
		case out[i].Err != nil:
			stats.Errored++
		case out[i].OK:
			stats.Passed++
		default:
			stats.Failed++
		}
		switch out[i].Outcome {
		case harden.ToolFault:
			stats.Crashes++
		case harden.Timeout, harden.Livelock:
			stats.Timeouts++
		}
		if out[i].Isolation != nil {
			stats.Retries += out[i].Isolation.Retries
		}
	}
	if s := stats.Elapsed.Seconds(); s > 0 {
		stats.CasesPerSecond = float64(stats.Cases) / s
	}
	return out, stats, err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
