package campaign_test

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"pfi/internal/campaign"
	"pfi/internal/harden"
	"pfi/internal/journal"
)

func openJournal(t *testing.T, path string) *journal.Log {
	t.Helper()
	l, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// sameVerdict compares the deterministic projection of two verdicts —
// exactly the fields the journal round-trips.
func sameVerdict(a, b campaign.Verdict) bool {
	errText := func(e error) string {
		if e == nil {
			return ""
		}
		return e.Error()
	}
	return a.Case.Name == b.Case.Name && a.OK == b.OK && a.Note == b.Note &&
		a.Outcome == b.Outcome && errText(a.Err) == errText(b.Err)
}

// TestJournalResume is the in-process acceptance path: a sweep canceled
// partway leaves a journal; resuming with it re-runs only the missing
// cells and produces a verdict stream identical to an uninterrupted
// run, at several worker counts.
func TestJournalResume(t *testing.T) {
	clean, _, err := campaign.Run(sweepSpec, sweepScenario)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "sweep.journal")
		jl := openJournal(t, path)
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		_, _, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{
			Workers: workers,
			Context: ctx,
			Journal: jl,
			OnVerdict: func(campaign.Verdict) {
				seen++
				if seen == 10 {
					cancel()
				}
			},
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: interrupted sweep err = %v, want context.Canceled", workers, err)
		}
		jl.Close()

		// Resume: completed cells restore from the journal, the
		// scenario runs only for the rest.
		jl2 := openJournal(t, path)
		var ran atomic.Int64
		counting := func(m *harden.Monitor, c campaign.Case) (bool, string, error) {
			ran.Add(1)
			return sweepScenario(m, c)
		}
		vs, stats, err := campaign.RunParallel(sweepSpec, counting, campaign.Options{
			Workers: workers,
			Journal: jl2,
		})
		jl2.Close()
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if len(vs) != len(clean) {
			t.Fatalf("workers=%d: resumed sweep has %d verdicts, want %d", workers, len(vs), len(clean))
		}
		for i := range vs {
			if !sameVerdict(vs[i], clean[i]) {
				t.Errorf("workers=%d: cell %d (%s) diverged after resume", workers, i, clean[i].Case.Name)
			}
		}
		if stats.Resumed < 10 || stats.Resumed >= len(clean) {
			t.Errorf("workers=%d: stats.Resumed = %d, want in [10,%d)", workers, stats.Resumed, len(clean))
		}
		if got := int(ran.Load()); got != len(clean)-stats.Resumed {
			t.Errorf("workers=%d: scenario ran %d times, want %d (resumed cells must not re-run)",
				workers, got, len(clean)-stats.Resumed)
		}
	}
}

// TestJournalResumeComplete: resuming a finished sweep re-runs nothing.
func TestJournalResumeComplete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	jl := openJournal(t, path)
	clean, _, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{Journal: jl})
	if err != nil {
		t.Fatal(err)
	}
	jl.Close()

	jl2 := openJournal(t, path)
	defer jl2.Close()
	never := func(m *harden.Monitor, c campaign.Case) (bool, string, error) {
		panic("resume of a complete journal invoked the scenario for " + c.Name)
	}
	vs, stats, err := campaign.RunParallel(sweepSpec, never, campaign.Options{Journal: jl2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != len(clean) || len(vs) != len(clean) {
		t.Fatalf("resumed %d of %d cells, got %d verdicts", stats.Resumed, len(clean), len(vs))
	}
	for i := range vs {
		if !sameVerdict(vs[i], clean[i]) {
			t.Errorf("cell %d (%s) diverged on full restore", i, clean[i].Case.Name)
		}
	}
}

// TestJournalQuarantineSemanticsSurviveResume: a contained cell's
// outcome kind, retry classification, and quarantine note are restored
// verbatim — the hostile cell is not re-executed on resume.
func TestJournalQuarantineSemanticsSurviveResume(t *testing.T) {
	cases, err := campaign.Generate(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	crash := cases[3].Name
	dir := t.TempDir()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	opts := campaign.Options{
		Workers: 4,
		Harden:  harden.Config{StallSteps: 200, Retry: true, ReproDir: dir},
		Repro: func(c campaign.Case) string {
			return "# campaign case: " + c.Name + "\nworld tcp\nrun 1s\n"
		},
	}

	jl := openJournal(t, path)
	opts.Journal = jl
	first, _, err := campaign.RunParallel(sweepSpec, faultyScenario(crash, ""), opts)
	if err != nil {
		t.Fatal(err)
	}
	jl.Close()

	jl2 := openJournal(t, path)
	defer jl2.Close()
	opts.Journal = jl2
	never := func(m *harden.Monitor, c campaign.Case) (bool, string, error) {
		panic("quarantined cell re-executed on resume: " + c.Name)
	}
	vs, stats, err := campaign.RunParallel(sweepSpec, never, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != len(first) {
		t.Fatalf("resumed %d cells, want %d", stats.Resumed, len(first))
	}
	for i := range vs {
		if vs[i].Case.Name != crash {
			continue
		}
		v, want := vs[i], first[i]
		if v.Outcome != harden.ToolFault || v.Status() != "CRASH" {
			t.Errorf("restored crash cell: outcome %v status %s", v.Outcome, v.Status())
		}
		if v.Note != want.Note {
			t.Errorf("restored quarantine note %q, want %q", v.Note, want.Note)
		}
		if v.Isolation == nil || v.Isolation.Retries != want.Isolation.Retries {
			t.Errorf("restored retry classification %+v, want retries=%d", v.Isolation, want.Isolation.Retries)
		}
	}
	if stats.Crashes != 1 || stats.Retries != 1 {
		t.Errorf("restored stats: %d crashes, %d retries; want 1 and 1", stats.Crashes, stats.Retries)
	}
}

// TestJournalSpecMismatchRejected: a journal never resumes a different
// sweep.
func TestJournalSpecMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	jl := openJournal(t, path)
	if _, _, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{Journal: jl}); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	other := sweepSpec
	other.Types = []string{"DATA", "ACK"}
	jl2 := openJournal(t, path)
	defer jl2.Close()
	_, _, err := campaign.RunParallel(other, sweepScenario, campaign.Options{Journal: jl2})
	if err == nil {
		t.Fatal("resume against a different matrix should fail")
	}
}

// TestJournalWriteFailureIsToolFault: losing the journal mid-sweep
// aborts the sweep with a tool-fault-classified error — completed work
// is never silently unjournaled.
func TestJournalWriteFailureIsToolFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	jl := openJournal(t, path)
	var once sync.Once
	_, _, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{
		Workers: 2,
		Journal: jl,
		OnVerdict: func(campaign.Verdict) {
			once.Do(func() { jl.Close() }) // the disk goes away
		},
	})
	if err == nil {
		t.Fatal("sweep with a dead journal should fail")
	}
	var f *journal.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err %T (%v) is not a *journal.Fault", err, err)
	}
	if f.Kind() != harden.ToolFault {
		t.Fatalf("journal fault kind %v, want ToolFault", f.Kind())
	}
}
