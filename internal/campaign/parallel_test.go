package campaign_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/core"
	"pfi/internal/harden"
	"pfi/internal/message"
	"pfi/internal/simtime"
	"pfi/internal/stack"
)

// typedStub recognizes a message's payload string as its type, so sweep
// scenarios can steer generated scripts without a real protocol.
type typedStub struct{}

func (typedStub) Protocol() string { return "typed" }
func (typedStub) Recognize(m *message.Message) (core.Info, error) {
	return core.Info{Type: string(m.Bytes())}, nil
}
func (typedStub) Generate(typ string, fields map[string]string) (*message.Message, error) {
	return message.NewString(typ), nil
}

// sweepScenario is a deterministic single-node simulation: one PFI layer,
// a fixed message load in both directions, and a note summarizing exactly
// what traffic survived the fault. Being a pure function of the case, it
// must produce identical verdicts at any worker count.
func sweepScenario(m *harden.Monitor, c campaign.Case) (bool, string, error) {
	env := &stack.Env{Sched: simtime.NewScheduler(), Node: "n1"}
	l := core.NewLayer(env, core.WithStub(typedStub{}))
	m.Attach(env.Sched, nil, func() int { return l.SendFilter().Stats().Injected + l.ReceiveFilter().Stats().Injected })
	stk := stack.New(env, l)
	var sent, delivered int
	stk.OnTransmit(func(m *message.Message) error { sent++; return nil })
	stk.OnDeliver(func(m *message.Message) error { delivered++; return nil })
	if err := c.Apply(l); err != nil {
		return false, "", err
	}
	types := []string{"DATA", "ACK", "PING"}
	for i := 0; i < 60; i++ {
		typ := types[i%len(types)]
		if err := stk.Send(message.NewString(typ)); err != nil {
			return false, "", err
		}
		if err := stk.Deliver(message.NewString(typ)); err != nil {
			return false, "", err
		}
	}
	env.Sched.RunFor(simtime.Duration(10 * time.Second)) // flush delayed forwards
	return sent+delivered > 0, fmt.Sprintf("sent=%d delivered=%d", sent, delivered), nil
}

var sweepSpec = campaign.Spec{
	Protocol: "typed",
	Types:    []string{"DATA", "ACK", "PING"},
}

// TestRunParallelDeterminism proves the determinism contract: 1, 4, and 8
// workers yield identical verdict slices (order, OK, Note) for the same
// spec and scenario.
func TestRunParallelDeterminism(t *testing.T) {
	serial, _, err := campaign.Run(sweepSpec, sweepScenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 3*6*2 {
		t.Fatalf("got %d verdicts, want 36", len(serial))
	}
	for _, workers := range []int{1, 4, 8} {
		vs, stats, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(vs) != len(serial) {
			t.Fatalf("workers=%d: got %d verdicts, want %d", workers, len(vs), len(serial))
		}
		if stats.Cases != len(serial) {
			t.Errorf("workers=%d: stats.Cases = %d, want %d", workers, stats.Cases, len(serial))
		}
		for i := range vs {
			if vs[i].Case.Name != serial[i].Case.Name {
				t.Fatalf("workers=%d: verdict %d is %q, serial has %q (order broken)",
					workers, i, vs[i].Case.Name, serial[i].Case.Name)
			}
			if vs[i].OK != serial[i].OK || vs[i].Note != serial[i].Note {
				t.Errorf("workers=%d: case %q: got (%v,%q), serial (%v,%q)",
					workers, vs[i].Case.Name, vs[i].OK, vs[i].Note, serial[i].OK, serial[i].Note)
			}
		}
	}
}

// TestRunStats checks the sweep statistics and the Summary footer.
func TestRunStats(t *testing.T) {
	vs, stats, err := campaign.Run(sweepSpec, sweepScenario)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cases != len(vs) {
		t.Errorf("stats.Cases = %d, want %d", stats.Cases, len(vs))
	}
	if stats.Passed+stats.Failed+stats.Errored != stats.Cases {
		t.Errorf("stats don't add up: %+v", stats)
	}
	if stats.Workers != 1 {
		t.Errorf("stats.Workers = %d, want 1", stats.Workers)
	}
	if stats.Elapsed <= 0 {
		t.Errorf("stats.Elapsed = %v, want > 0", stats.Elapsed)
	}
	if stats.CasesPerSecond <= 0 {
		t.Errorf("stats.CasesPerSecond = %v, want > 0", stats.CasesPerSecond)
	}
	sum := campaign.Summary(vs, stats)
	if want := fmt.Sprintf("swept %d cases", stats.Cases); !strings.Contains(sum, want) {
		t.Errorf("Summary missing stats footer %q:\n%s", want, sum)
	}
}

// TestRunParallelOnVerdict checks the progress hook fires once per case and
// is never invoked concurrently.
func TestRunParallelOnVerdict(t *testing.T) {
	var mu sync.Mutex
	inHook := false
	seen := map[string]int{}
	vs, _, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{
		Workers: 4,
		OnVerdict: func(v campaign.Verdict) {
			mu.Lock()
			if inHook {
				t.Error("OnVerdict invoked concurrently")
			}
			inHook = true
			seen[v.Case.Name]++
			inHook = false
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(vs) {
		t.Errorf("OnVerdict saw %d cases, want %d", len(seen), len(vs))
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("case %q observed %d times", name, n)
		}
	}
}

// TestRunParallelCancellation checks a canceled context stops the sweep
// early and returns only completed verdicts plus the context error.
func TestRunParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	vs, stats, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{
		Workers: 2,
		Context: ctx,
		OnVerdict: func(campaign.Verdict) {
			n++
			if n == 5 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(vs) >= 36 {
		t.Errorf("sweep ran to completion (%d verdicts) despite cancellation", len(vs))
	}
	if len(vs) < 5 {
		t.Errorf("got %d verdicts, want at least the 5 completed before cancel", len(vs))
	}
	if stats.Cases != len(vs) {
		t.Errorf("stats.Cases = %d, want %d", stats.Cases, len(vs))
	}
	// Completed verdicts must still be in generation order.
	all, err2 := campaign.Generate(sweepSpec)
	if err2 != nil {
		t.Fatal(err2)
	}
	pos := map[string]int{}
	for i, c := range all {
		pos[c.Name] = i
	}
	last := -1
	for _, v := range vs {
		if pos[v.Case.Name] <= last {
			t.Errorf("verdicts out of generation order at %q", v.Case.Name)
		}
		last = pos[v.Case.Name]
	}
}
