package campaign_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/core"
	"pfi/internal/gmp"
	"pfi/internal/harden"
	"pfi/internal/netsim"
	"pfi/internal/rudp"
	"pfi/internal/stack"
	"pfi/internal/tpc"
)

func TestGenerateMatrix(t *testing.T) {
	spec := campaign.Spec{
		Protocol: "demo",
		Types:    []string{"ACK", "DATA"},
	}
	cases, err := campaign.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 types x 6 faults x 2 directions.
	if len(cases) != 24 {
		t.Fatalf("generated %d cases, want 24", len(cases))
	}
	names := map[string]bool{}
	for _, c := range cases {
		if names[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		if c.Script == "" {
			t.Errorf("case %q has no script", c.Name)
		}
		if !strings.Contains(c.Script, c.Type) {
			t.Errorf("case %q script does not mention its type", c.Name)
		}
	}
	if !names["ACK/drop/send"] || !names["DATA/reorder/receive"] {
		t.Errorf("expected case names missing: %v", names)
	}
}

func TestGenerateRestricted(t *testing.T) {
	spec := campaign.Spec{
		Protocol:   "demo",
		Types:      []string{"HB"},
		Faults:     []campaign.FaultKind{campaign.Drop},
		Directions: []core.Direction{core.Send},
	}
	cases, err := campaign.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1 || cases[0].Name != "HB/drop/send" {
		t.Fatalf("cases %v", cases)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := campaign.Generate(campaign.Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := campaign.Generate(campaign.Spec{Types: []string{`bad"type`}}); err == nil {
		t.Error("metacharacter type accepted")
	}
	if _, err := campaign.Generate(campaign.Spec{Types: []string{"A"}, DelayMS: -1}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestGeneratedScriptsParse(t *testing.T) {
	cases, err := campaign.Generate(campaign.Spec{
		Protocol: "x",
		Types:    []string{"A", "B", "C"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every generated script must install cleanly on a real PFI layer.
	w := netsim.NewWorld(1)
	node := w.MustAddNode("n")
	l := core.NewLayer(node.Env())
	for _, c := range cases {
		if err := c.Apply(l); err != nil {
			t.Errorf("case %q: %v", c.Name, err)
		}
	}
}

// TestCampaignAgainstGMP sweeps the generated fault matrix over a live GMP
// cluster and checks the protocol's core promise under every single-type
// single-fault attack: the two unfaulted daemons always converge to a
// common view that contains them both.
func TestCampaignAgainstGMP(t *testing.T) {
	spec := campaign.Spec{
		Protocol: "gmp",
		Types: []string{
			"HEARTBEAT", "PROCLAIM", "JOIN", "MEMBERSHIP_CHANGE",
			"ACK", "COMMIT", "RUDP-ACK",
		},
		// Corrupt would hit the rudp header byte and is covered by the
		// byzantine example; keep the sweep to the structural faults.
		Faults: []campaign.FaultKind{
			campaign.Drop, campaign.DropFirstN, campaign.Delay,
			campaign.Duplicate, campaign.Reorder,
		},
	}
	scenario := func(m *harden.Monitor, c campaign.Case) (bool, string, error) {
		names := []string{"gmd1", "gmd2", "gmd3"}
		w := netsim.NewWorld(99)
		daemons := map[string]*gmp.Daemon{}
		var victimPFI *core.Layer
		for _, name := range names {
			node, err := w.AddNode(name)
			if err != nil {
				return false, "", err
			}
			net := rudp.NewLayer(node.Env())
			pfi := core.NewLayer(node.Env(), core.WithStub(gmp.PFIStub{}))
			node.SetStack(stack.New(node.Env(), net, pfi))
			gmd, err := gmp.New(node.Env(), net, names)
			if err != nil {
				return false, "", err
			}
			daemons[name] = gmd
			if name == "gmd3" {
				victimPFI = pfi
			}
		}
		if err := w.ConnectAll(netsim.LinkConfig{Latency: 2 * time.Millisecond}); err != nil {
			return false, "", err
		}
		// Fault gmd3's traffic per the generated case.
		if err := c.Apply(victimPFI); err != nil {
			return false, "", err
		}
		for _, n := range names {
			daemons[n].Start()
		}
		w.RunFor(3 * time.Minute)

		// Success criterion: the two healthy daemons share a view that
		// contains them both (the faulted one may or may not make it in).
		g1, g2 := daemons["gmd1"].Group(), daemons["gmd2"].Group()
		if !g1.Equal(g2) {
			return false, fmt.Sprintf("diverged: %v vs %v", g1, g2), nil
		}
		if !g1.Contains("gmd1") || !g1.Contains("gmd2") {
			return false, fmt.Sprintf("healthy members missing from %v", g1), nil
		}
		return true, g1.String(), nil
	}

	verdicts, _, err := campaign.Run(spec, scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 7*5*2 {
		t.Fatalf("ran %d cases, want 70", len(verdicts))
	}
	if fails := campaign.Failures(verdicts); len(fails) > 0 {
		t.Errorf("%d generated cases broke the healthy-pair invariant:\n%s",
			len(fails), campaign.Summary(fails))
	}
}

func TestSummaryFormat(t *testing.T) {
	vs := []campaign.Verdict{
		{Case: campaign.Case{Name: "A/drop/send"}, OK: true, Note: "fine"},
		{Case: campaign.Case{Name: "B/delay/receive"}, OK: false, Note: "broke"},
		{Case: campaign.Case{Name: "C/corrupt/send"}, Err: fmt.Errorf("boom")},
	}
	s := campaign.Summary(vs)
	for _, want := range []string{"PASS", "FAIL", "ERROR", "1/3 cases passed"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if got := len(campaign.Failures(vs)); got != 2 {
		t.Errorf("Failures = %d, want 2", got)
	}
}

func TestFaultKindString(t *testing.T) {
	if campaign.Drop.String() != "drop" {
		t.Error("Drop name")
	}
	if campaign.FaultKind(99).String() != "FaultKind(99)" {
		t.Error("unknown kind name")
	}
	if len(campaign.AllFaults()) != 6 {
		t.Error("AllFaults count")
	}
}

// TestCampaignAgainstTPC sweeps the generated matrix over two-phase commit
// and checks atomicity: under every structural single-fault attack, no two
// participants decide different outcomes.
func TestCampaignAgainstTPC(t *testing.T) {
	spec := campaign.Spec{
		Protocol: "tpc",
		Types:    []string{"PREPARE", "VOTE-YES", "COMMIT", "ABORT", "RUDP-ACK"},
		Faults: []campaign.FaultKind{
			campaign.Drop, campaign.Delay, campaign.Duplicate, campaign.Reorder,
		},
	}
	scenario := func(m *harden.Monitor, c campaign.Case) (bool, string, error) {
		w := netsim.NewWorld(7)
		names := []string{"p1", "p2", "p3"}
		participants := map[string]*tpc.Participant{}
		var coord *tpc.Coordinator
		var victim *core.Layer
		for _, name := range append([]string{"coord"}, names...) {
			node, err := w.AddNode(name)
			if err != nil {
				return false, "", err
			}
			net := rudp.NewLayer(node.Env())
			pfi := core.NewLayer(node.Env(), core.WithStub(tpc.PFIStub{}))
			node.SetStack(stack.New(node.Env(), net, pfi))
			if name == "coord" {
				coord = tpc.NewCoordinator(node.Env(), net)
			} else {
				participants[name] = tpc.NewParticipant(node.Env(), net)
			}
			if name == "p2" {
				victim = pfi
			}
		}
		if err := w.ConnectAll(netsim.LinkConfig{Latency: 2 * time.Millisecond}); err != nil {
			return false, "", err
		}
		if err := c.Apply(victim); err != nil {
			return false, "", err
		}
		tx, err := coord.Begin(names, nil)
		if err != nil {
			return false, "", err
		}
		w.RunFor(2 * time.Minute)
		decided := map[tpc.TxState]bool{}
		for _, name := range names {
			s := participants[name].State(tx)
			if s == tpc.StateCommitted || s == tpc.StateAborted {
				decided[s] = true
			}
		}
		if len(decided) > 1 {
			return false, fmt.Sprintf("split decision: %v", decided), nil
		}
		return true, fmt.Sprintf("coordinator outcome %v", coord.Outcome(tx)), nil
	}
	verdicts, _, err := campaign.Run(spec, scenario)
	if err != nil {
		t.Fatal(err)
	}
	if fails := campaign.Failures(verdicts); len(fails) > 0 {
		t.Errorf("%d generated cases broke 2PC atomicity:\n%s",
			len(fails), campaign.Summary(fails))
	}
}
