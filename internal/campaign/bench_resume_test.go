package campaign_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/core"
	"pfi/internal/harden"
	"pfi/internal/journal"
	"pfi/internal/message"
	"pfi/internal/simtime"
	"pfi/internal/stack"
)

// benchResumeSpec is a ~1,000-cell matrix (84 synthetic message types x 6
// faults x 2 directions = 1,008 cells) over a deterministic single-node
// scenario sized like a real protocol cell (milliseconds of simulated
// traffic), so the per-cell journal append is measured against realistic
// cell work rather than dominating a toy one.
func benchResumeSpec() campaign.Spec {
	types := make([]string, 84)
	for i := range types {
		types[i] = fmt.Sprintf("T%02d", i)
	}
	return campaign.Spec{Protocol: "typed", Types: types}
}

// resumeScenario is sweepScenario's shape with a GMP-cell-sized message
// load: 2,000 round trips through the filter layer per cell.
func resumeScenario(m *harden.Monitor, c campaign.Case) (bool, string, error) {
	env := &stack.Env{Sched: simtime.NewScheduler(), Node: "n1"}
	l := core.NewLayer(env, core.WithStub(typedStub{}))
	m.Attach(env.Sched, nil, func() int {
		return l.SendFilter().Stats().Injected + l.ReceiveFilter().Stats().Injected
	})
	stk := stack.New(env, l)
	var sent, delivered int
	stk.OnTransmit(func(m *message.Message) error { sent++; return nil })
	stk.OnDeliver(func(m *message.Message) error { delivered++; return nil })
	if err := c.Apply(l); err != nil {
		return false, "", err
	}
	types := []string{"DATA", "ACK", "PING"}
	for i := 0; i < 2000; i++ {
		typ := types[i%len(types)]
		if err := stk.Send(message.NewString(typ)); err != nil {
			return false, "", err
		}
		if err := stk.Deliver(message.NewString(typ)); err != nil {
			return false, "", err
		}
	}
	env.Sched.RunFor(simtime.Duration(10 * time.Second))
	return sent+delivered > 0, fmt.Sprintf("sent=%d delivered=%d", sent, delivered), nil
}

func runResumeSweep(b *testing.B, jl *journal.Log) campaign.RunStats {
	b.Helper()
	_, stats, err := campaign.RunParallel(benchResumeSpec(), resumeScenario,
		campaign.Options{Workers: 1, Journal: jl})
	if err != nil {
		b.Fatal(err)
	}
	if stats.Cases != 1008 {
		b.Fatalf("swept %d cells, want 1008", stats.Cases)
	}
	return stats
}

// BenchmarkResumeSweep is the crash-safe sweep: every completed cell is
// banked to the write-ahead log as it lands, including the final fsync.
// Compare with BenchmarkResumeSweepBare — the delta is the whole price of
// crash-safety on a 1,008-cell matrix (BENCH_resume.json budgets it <2%).
func BenchmarkResumeSweep(b *testing.B) {
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("sweep%d.wal", i))
		jl, err := journal.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		stats := runResumeSweep(b, jl)
		if err := jl.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := jl.Close(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(stats.CasesPerSecond, "cases/s")
		}
		os.Remove(path)
	}
}

// BenchmarkResumeSweepBare is the identical sweep with no journal
// attached: the pre-crash-safety baseline.
func BenchmarkResumeSweepBare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats := runResumeSweep(b, nil)
		if i == 0 {
			b.ReportMetric(stats.CasesPerSecond, "cases/s")
		}
	}
}
