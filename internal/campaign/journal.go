package campaign

import (
	"fmt"
	"hash/fnv"
	"time"

	"pfi/internal/harden"
	"pfi/internal/journal"
)

// Journal record types for campaign sweeps. The fleet coordinator
// writes the same records, so a journal started by an in-process sweep
// resumes under a fleet coordinator and vice versa.
const (
	// RecCampaignMeta pins the sweep a journal belongs to; always the
	// first campaign record. Resuming against a different matrix is a
	// loud error, never a silent misattribution of verdicts.
	RecCampaignMeta = "campaign-meta"
	// RecVerdict is one completed cell, keyed by generation index.
	RecVerdict = "verdict"
	// RecEpoch counts coordinator restarts (fleet journals only).
	RecEpoch = "epoch"
)

// JournalMeta identifies the sweep: cell count plus a hash of the
// ordered case names.
type JournalMeta struct {
	Kind  string `json:"kind"`
	Cells int    `json:"cells"`
	Hash  string `json:"hash"`
}

// JournalVerdict is the durable projection of one cell's verdict — the
// same deterministic fields the fleet wire protocol carries (no
// wall-clock-dependent isolation stacks or local paths beyond the
// note), so restored verdicts canonicalize identically to fresh ones.
type JournalVerdict struct {
	Index     int    `json:"i"`
	Name      string `json:"name"`
	OK        bool   `json:"ok,omitempty"`
	Note      string `json:"note,omitempty"`
	Err       string `json:"err,omitempty"`
	Outcome   int    `json:"outcome,omitempty"`
	Retries   int    `json:"retries,omitempty"`
	ElapsedUS int64  `json:"elapsed_us,omitempty"`
}

// JournalOf projects a completed verdict onto its durable record.
func JournalOf(index int, v Verdict) JournalVerdict {
	jv := JournalVerdict{
		Index:     index,
		Name:      v.Case.Name,
		OK:        v.OK,
		Note:      v.Note,
		Outcome:   int(v.Outcome),
		ElapsedUS: v.Elapsed.Microseconds(),
	}
	if v.Err != nil {
		jv.Err = v.Err.Error()
	}
	if v.Isolation != nil {
		jv.Retries = v.Isolation.Retries
	}
	return jv
}

// Restore rebuilds the verdict for its locally regenerated case. The
// quarantine/retry semantics survive the round trip: a contained cell
// keeps its outcome kind, retry count, and repro note, and is not
// re-run on resume.
func (jv JournalVerdict) Restore(c Case) Verdict {
	v := Verdict{
		Case:    c,
		OK:      jv.OK,
		Note:    jv.Note,
		Outcome: harden.Kind(jv.Outcome),
		Elapsed: time.Duration(jv.ElapsedUS) * time.Microsecond,
	}
	if jv.Err != "" {
		v.Err = restoredError(jv.Err)
	}
	if jv.Retries > 0 || (v.Outcome != harden.Pass && v.Outcome != harden.Fail) {
		v.Isolation = &harden.Outcome{Kind: v.Outcome, Err: v.Err, Retries: jv.Retries}
	}
	return v
}

// restoredError preserves journaled error text through resume.
type journalErr string

func (e journalErr) Error() string { return string(e) }

func restoredError(s string) error { return journalErr(s) }

// CaseHash fingerprints a generated case matrix (ordered names) so a
// journal can refuse to resume against a different sweep.
func CaseHash(cases []Case) string {
	h := fnv.New64a()
	for _, c := range cases {
		h.Write([]byte(c.Name))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// PrepareJournal readies a journal for the given case matrix: a fresh
// journal is stamped with the sweep's metadata; an existing one is
// validated against it (cell count and case-name hash must match) and
// its completed cells are returned keyed by index. Duplicate records
// for a cell keep the first (cells are pure functions of the case, so
// any duplicate is identical). Unknown record types are skipped so
// fleet epochs and future record kinds coexist in the same log.
func PrepareJournal(l *journal.Log, cases []Case) (map[int]JournalVerdict, error) {
	want := JournalMeta{Kind: "campaign", Cells: len(cases), Hash: CaseHash(cases)}
	restored := make(map[int]JournalVerdict)
	sawMeta := false
	for _, rec := range l.Records() {
		switch rec.Type {
		case RecCampaignMeta:
			var meta JournalMeta
			if err := journal.Decode(rec, RecCampaignMeta, &meta); err != nil {
				return nil, err
			}
			if meta != want {
				return nil, fmt.Errorf("campaign: journal %s belongs to a different sweep (%d cells, hash %s; this sweep: %d cells, hash %s)",
					l.Path(), meta.Cells, meta.Hash, want.Cells, want.Hash)
			}
			sawMeta = true
		case RecVerdict:
			if !sawMeta {
				return nil, fmt.Errorf("campaign: journal %s has verdicts before metadata", l.Path())
			}
			var jv JournalVerdict
			if err := journal.Decode(rec, RecVerdict, &jv); err != nil {
				return nil, err
			}
			if jv.Index < 0 || jv.Index >= len(cases) {
				return nil, fmt.Errorf("campaign: journal cell %d out of range [0,%d)", jv.Index, len(cases))
			}
			if jv.Name != cases[jv.Index].Name {
				return nil, fmt.Errorf("campaign: journal cell %d is %q, matrix has %q", jv.Index, jv.Name, cases[jv.Index].Name)
			}
			if _, dup := restored[jv.Index]; !dup {
				restored[jv.Index] = jv
			}
		}
	}
	if !sawMeta {
		if err := l.Append(RecCampaignMeta, want); err != nil {
			return nil, err
		}
	}
	return restored, nil
}
