package campaign_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"pfi/internal/campaign"
	"pfi/internal/harden"
	"pfi/internal/simtime"
	"pfi/internal/trace"
)

// TestForEachContainsPanics: one panicking cell in a 1000-cell sweep must
// not take down the pool — every other index still runs, and the panic
// surfaces as a structured *PanicError.
func TestForEachContainsPanics(t *testing.T) {
	for _, workers := range []int{1, 8} {
		n := 1000
		results := make([]int, n)
		err := campaign.ForEach(nil, workers, n, func(i int) {
			if i == 437 {
				panic(fmt.Sprintf("cell %d exploded", i))
			}
			results[i] = i + 1
		})
		perr, ok := err.(*campaign.PanicError)
		if !ok {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if perr.Index != 437 || perr.Count != 1 {
			t.Errorf("workers=%d: %+v, want index 437 count 1", workers, perr)
		}
		if !strings.Contains(perr.Error(), "cell 437 exploded") || perr.Stack == "" {
			t.Errorf("workers=%d: PanicError missing value or stack: %v", workers, perr)
		}
		completed := 0
		for i, r := range results {
			if r == i+1 {
				completed++
			}
		}
		if completed != n-1 {
			t.Errorf("workers=%d: %d cells completed, want %d", workers, completed, n-1)
		}
	}
}

// TestForEachReportsAllPanics: several panicking cells are still one
// error, with the total count preserved.
func TestForEachReportsAllPanics(t *testing.T) {
	err := campaign.ForEach(nil, 4, 100, func(i int) {
		if i%10 == 0 {
			panic(i)
		}
	})
	perr, ok := err.(*campaign.PanicError)
	if !ok {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if perr.Count != 10 {
		t.Errorf("Count = %d, want 10", perr.Count)
	}
	if !strings.Contains(perr.Error(), "and 9 more panics") {
		t.Errorf("Error() = %q, want trailing panic count", perr.Error())
	}
}

// faultyScenario behaves exactly like sweepScenario except for two
// designated cells: one panics, one livelocks (events churn forever with
// no trace progress). Everything the acceptance criterion needs.
func faultyScenario(crash, livelock string) campaign.Scenario {
	return func(m *harden.Monitor, c campaign.Case) (bool, string, error) {
		switch c.Name {
		case crash:
			panic("injected crash in " + c.Name)
		case livelock:
			s := simtime.NewScheduler()
			m.Attach(s, trace.NewLog(), nil)
			var spin func()
			spin = func() { s.After(1, "spin", spin) }
			spin()
			s.Run() // never drains; only the stall watchdog ends this
			return true, "", nil
		}
		return sweepScenario(m, c)
	}
}

// TestSweepSurvivesCrashAndLivelock is the PR's acceptance scenario: a
// parallel sweep containing one panicking and one livelocking cell
// completes at 8 workers, reports those two cells as CRASH and LIVELOCK
// verdicts with quarantine repro paths, and leaves every other verdict
// byte-identical to a clean sweep.
func TestSweepSurvivesCrashAndLivelock(t *testing.T) {
	cases, err := campaign.Generate(sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	crash, livelock := cases[3].Name, cases[20].Name
	dir := t.TempDir()

	clean, _, err := campaign.RunParallel(sweepSpec, sweepScenario, campaign.Options{
		Workers: 8,
		Harden:  harden.Config{StallSteps: 200, Retry: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	vs, stats, err := campaign.RunParallel(sweepSpec, faultyScenario(crash, livelock), campaign.Options{
		Workers: 8,
		Harden:  harden.Config{StallSteps: 200, Retry: true, ReproDir: dir},
		Repro: func(c campaign.Case) string {
			return fmt.Sprintf("# campaign case: %s\nworld tcp\nrun 1s\n", c.Name)
		},
	})
	if err != nil {
		t.Fatalf("sweep with contained failures errored: %v", err)
	}
	if len(vs) != len(clean) {
		t.Fatalf("got %d verdicts, want %d", len(vs), len(clean))
	}

	for i := range vs {
		v, want := vs[i], clean[i]
		switch v.Case.Name {
		case crash:
			if v.Outcome != harden.ToolFault || v.Status() != "CRASH" {
				t.Errorf("crash cell: outcome %v status %s", v.Outcome, v.Status())
			}
			checkQuarantined(t, v, harden.ToolFault)
		case livelock:
			if v.Outcome != harden.Livelock || v.Status() != "LIVELOCK" {
				t.Errorf("livelock cell: outcome %v status %s", v.Outcome, v.Status())
			}
			checkQuarantined(t, v, harden.Livelock)
		default:
			if v.OK != want.OK || v.Note != want.Note || v.Outcome != want.Outcome ||
				(v.Err == nil) != (want.Err == nil) {
				t.Errorf("case %q diverged from clean sweep: (%v,%q,%v) vs (%v,%q,%v)",
					v.Case.Name, v.OK, v.Note, v.Outcome, want.OK, want.Note, want.Outcome)
			}
		}
	}
	if stats.Crashes != 1 || stats.Timeouts != 1 {
		t.Errorf("stats report %d crash(es), %d timeout/livelock(s); want 1 and 1", stats.Crashes, stats.Timeouts)
	}
	if stats.Retries != 2 {
		t.Errorf("stats.Retries = %d, want 2 (one per contained cell)", stats.Retries)
	}
	if line := stats.String(); !strings.Contains(line, "contained 1 crash(es), 1 timeout/livelock(s), 2 retr(ies)") {
		t.Errorf("stats line missing containment summary: %s", line)
	}
}

// checkQuarantined asserts a contained verdict carries its isolation
// record and a repro file whose header parses back to the right kind.
func checkQuarantined(t *testing.T, v campaign.Verdict, kind harden.Kind) {
	t.Helper()
	if v.OK {
		t.Errorf("%s: contained verdict reported OK", v.Case.Name)
	}
	if v.Isolation == nil {
		t.Fatalf("%s: no isolation record", v.Case.Name)
	}
	if !v.Isolation.Deterministic || v.Isolation.Retries != 1 {
		t.Errorf("%s: retry classification %+v, want deterministic after 1 retry", v.Case.Name, v.Isolation)
	}
	path, found := strings.CutPrefix(v.Note, "repro: ")
	if !found {
		t.Fatalf("%s: note %q carries no repro path", v.Case.Name, v.Note)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", v.Case.Name, err)
	}
	got, ok := harden.ReproKind(string(data))
	if !ok || got != kind {
		t.Errorf("%s: repro header kind %v/%v, want %v", v.Case.Name, got, ok, kind)
	}
	if !strings.Contains(string(data), "# campaign case: "+v.Case.Name) {
		t.Errorf("%s: repro does not embed the rendered case:\n%s", v.Case.Name, data)
	}
}
