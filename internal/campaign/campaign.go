// Package campaign implements the paper's future-work item (ii):
// "automatic generation of test scripts from a protocol specification".
//
// Given a protocol specification — the message types a stub recognizes and
// the fault vocabulary to exercise — Generate produces the full matrix of
// deterministic filter scripts: for every (message type × fault kind ×
// direction), one script that injects exactly that fault into exactly that
// traffic. A Campaign then drives a user-supplied scenario once per case
// and collects verdicts, turning the paper's hand-written experiments into
// a systematic sweep.
package campaign

import (
	"fmt"
	"strings"
	"time"

	"pfi/internal/core"
	"pfi/internal/harden"
)

// FaultKind is one element of the generated fault vocabulary. These are
// the per-message manipulations of Section 2.1 (message manipulation) —
// the process-level models of Section 2.2 compose from them.
type FaultKind int

const (
	// Drop discards every matching message.
	Drop FaultKind = iota + 1
	// DropFirstN discards only the first N matching messages, then passes.
	DropFirstN
	// Delay holds every matching message for a fixed interval.
	Delay
	// Duplicate forwards one extra copy of every matching message.
	Duplicate
	// Corrupt flips one byte of every matching message.
	Corrupt
	// Reorder holds pairs of matching messages and releases them swapped.
	Reorder
)

var faultNames = map[FaultKind]string{
	Drop:       "drop",
	DropFirstN: "drop-first-n",
	Delay:      "delay",
	Duplicate:  "duplicate",
	Corrupt:    "corrupt",
	Reorder:    "reorder",
}

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// AllFaults returns the full fault vocabulary.
func AllFaults() []FaultKind {
	return []FaultKind{Drop, DropFirstN, Delay, Duplicate, Corrupt, Reorder}
}

// Spec describes the protocol under test.
type Spec struct {
	// Protocol names the target (diagnostics only).
	Protocol string
	// Types lists the message types the protocol's stub recognizes.
	Types []string
	// Faults selects the fault vocabulary (nil = AllFaults).
	Faults []FaultKind
	// Directions selects which filters to target (nil = both).
	Directions []core.Direction
	// DelayMS parameterizes Delay cases (default 2000).
	DelayMS int
	// FirstN parameterizes DropFirstN cases (default 3).
	FirstN int
	// CorruptOffset is the byte index Corrupt cases flip (default 0).
	CorruptOffset int
}

func (s Spec) withDefaults() Spec {
	if s.Faults == nil {
		s.Faults = AllFaults()
	}
	if s.Directions == nil {
		s.Directions = []core.Direction{core.Send, core.Receive}
	}
	if s.DelayMS == 0 {
		s.DelayMS = 2000
	}
	if s.FirstN == 0 {
		s.FirstN = 3
	}
	return s
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if len(s.Types) == 0 {
		return fmt.Errorf("campaign: spec has no message types")
	}
	for _, t := range s.Types {
		if strings.ContainsAny(t, "{}[]$\"\\") {
			return fmt.Errorf("campaign: message type %q contains script metacharacters", t)
		}
	}
	if s.DelayMS < 0 || s.FirstN < 0 || s.CorruptOffset < 0 {
		return fmt.Errorf("campaign: negative parameter")
	}
	return nil
}

// Case is one generated test: a single fault on a single message type in a
// single direction.
type Case struct {
	// Name is a unique "type/fault/direction" label.
	Name string
	// Type is the targeted message type.
	Type string
	// Fault is the injected fault kind.
	Fault FaultKind
	// Dir selects the send or receive filter.
	Dir core.Direction
	// Script is the generated Tcl filter source.
	Script string
}

// Apply installs the case's script on the given PFI layer (clearing the
// other direction).
func (c Case) Apply(l *core.Layer) error {
	if c.Dir == core.Send {
		if err := l.SetReceiveScript(""); err != nil {
			return err
		}
		return l.SetSendScript(c.Script)
	}
	if err := l.SetSendScript(""); err != nil {
		return err
	}
	return l.SetReceiveScript(c.Script)
}

// Generate expands the specification into its deterministic case matrix.
func Generate(spec Spec) ([]Case, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	var cases []Case
	for _, typ := range spec.Types {
		for _, f := range spec.Faults {
			for _, dir := range spec.Directions {
				script, err := buildScript(spec, typ, f)
				if err != nil {
					return nil, err
				}
				cases = append(cases, Case{
					Name:   fmt.Sprintf("%s/%s/%s", typ, f, dir),
					Type:   typ,
					Fault:  f,
					Dir:    dir,
					Script: script,
				})
			}
		}
	}
	return cases, nil
}

// buildScript renders the filter script for one (type, fault) pair.
func buildScript(spec Spec, typ string, f FaultKind) (string, error) {
	guard := fmt.Sprintf(`[msg_type cur_msg] eq "%s"`, typ)
	return FaultSnippet(f, guard, SnippetParams{
		DelayMS:       spec.DelayMS,
		FirstN:        spec.FirstN,
		CorruptOffset: spec.CorruptOffset,
	})
}

// SnippetParams parameterizes FaultSnippet.
type SnippetParams struct {
	// DelayMS is the hold interval for Delay faults.
	DelayMS int
	// FirstN bounds DropFirstN faults.
	FirstN int
	// CorruptOffset is the byte index Corrupt faults flip.
	CorruptOffset int
	// StateSuffix disambiguates the filter-global state variables (the
	// DropFirstN counter) when several snippets compose into one script.
	// Must be a bare identifier fragment; empty is fine for a lone snippet.
	StateSuffix string
}

// FaultSnippet renders the filter-script fragment that injects one fault
// kind whenever guard (a Tcl expr condition) holds for the current message.
// The campaign matrix builds its per-case scripts from these, and the
// explore fuzzer composes several time-windowed snippets into a single
// faultload — both speak the identical fault vocabulary.
func FaultSnippet(f FaultKind, guard string, p SnippetParams) (string, error) {
	switch f {
	case Drop:
		return fmt.Sprintf("if {%s} { xDrop cur_msg }\n", guard), nil
	case DropFirstN:
		v := "dropped" + p.StateSuffix
		return fmt.Sprintf(`if {%s} {
	if {![info exists %s]} { set %s 0 }
	if {$%s < %d} {
		incr %s
		xDrop cur_msg
	}
}
`, guard, v, v, v, p.FirstN, v), nil
	case Delay:
		return fmt.Sprintf("if {%s} { xDelay cur_msg %d }\n", guard, p.DelayMS), nil
	case Duplicate:
		return fmt.Sprintf("if {%s} { xDuplicate cur_msg 1 }\n", guard), nil
	case Corrupt:
		return fmt.Sprintf(`if {%s} {
	if {[msg_len cur_msg] > %d} {
		msg_set_byte cur_msg %d [expr {[msg_byte cur_msg %d] ^ 0xFF}]
	}
}
`, guard, p.CorruptOffset, p.CorruptOffset, p.CorruptOffset), nil
	case Reorder:
		return fmt.Sprintf(`if {%s} {
	xHold cur_msg
	if {[held_count] >= 2} { xReleaseLIFO }
}
`, guard), nil
	default:
		return "", fmt.Errorf("campaign: unknown fault kind %v", f)
	}
}

// Verdict is the outcome of one case run.
type Verdict struct {
	Case Case
	// OK reports whether the scenario's success criterion held under the
	// injected fault.
	OK bool
	// Note carries scenario-specific detail (what broke, counters, ...).
	Note string
	// Err reports a harness failure (script error, setup failure) or, for
	// contained runs, the isolation layer's description of what tripped.
	Err error
	// Elapsed is the wall-clock cost of the case.
	Elapsed time.Duration
	// Outcome classifies the run under the harden taxonomy. Pass/Fail are
	// ordinary completions; ToolFault, Timeout, Livelock, and
	// BudgetExceeded are containment events; Flaky means the first
	// attempt was contained but the retry completed.
	Outcome harden.Kind
	// Isolation carries the full containment record (stack, counter,
	// retry classification, repro path) for every non-Pass/Fail outcome;
	// nil when the run completed under its own power.
	Isolation *harden.Outcome
}

// Status renders the verdict's status column: the isolation taxonomy tag
// (CRASH, TIMEOUT, LIVELOCK, BUDGET, FLAKY) when the run was contained or
// flaky, else the classic PASS/FAIL/ERROR triple.
func (v Verdict) Status() string {
	if v.Outcome.Contained() || v.Outcome == harden.Flaky {
		return v.Outcome.Tag()
	}
	switch {
	case v.Err != nil:
		return "ERROR"
	case !v.OK:
		return "FAIL"
	}
	return "PASS"
}

// Scenario runs the system under test with the given case already applied
// and reports whether the protocol behaved acceptably. The monitor is the
// isolation layer's observer: a scenario that builds a simulated world
// should Attach it (scheduler, trace log, injected-message counter) so
// watchdogs and budgets can meter the run. Ignoring it is safe — panic
// containment and retry work regardless.
type Scenario func(m *harden.Monitor, c Case) (ok bool, note string, err error)

// Run executes every generated case against the scenario, serially, and
// returns the verdicts in generation order plus sweep statistics. It is
// RunParallel with a single worker.
func Run(spec Spec, scenario Scenario) ([]Verdict, RunStats, error) {
	return RunParallel(spec, scenario, Options{Workers: 1})
}

// Failures filters the verdicts that did not hold (or errored).
func Failures(vs []Verdict) []Verdict {
	var out []Verdict
	for _, v := range vs {
		if !v.OK || v.Err != nil {
			out = append(out, v)
		}
	}
	return out
}

// Summary renders a one-line-per-case report. Pass the RunStats returned
// by Run/RunParallel to append a throughput line.
func Summary(vs []Verdict, stats ...RunStats) string {
	var b strings.Builder
	pass := 0
	for _, v := range vs {
		status := v.Status()
		if status == "PASS" {
			pass++
		}
		note := v.Note
		if note == "" && v.Err != nil {
			note = v.Err.Error()
		}
		fmt.Fprintf(&b, "%-8s %-40s %s\n", status, v.Case.Name, note)
	}
	fmt.Fprintf(&b, "%d/%d cases passed\n", pass, len(vs))
	for _, st := range stats {
		fmt.Fprintf(&b, "%s\n", st)
	}
	return b.String()
}
