// Package diag wires the standard -cpuprofile/-memprofile/-trace flags
// into PFI's command-line tools so campaign hot paths can be profiled
// without ad-hoc builds: run the tool with a flag, feed the output to
// `go tool pprof` or `go tool trace`.
package diag

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the profiling output paths registered on a FlagSet.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register adds -cpuprofile, -memprofile, and -trace to the default
// command-line FlagSet.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write an allocation profile to `file` on exit")
	flag.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to `file`")
	return f
}

// Start begins CPU profiling and tracing if requested. It returns a stop
// function that flushes every requested profile; the caller must invoke it
// before os.Exit (defer is not enough on the os.Exit path).
func (f *Flags) Start() (stop func() error, err error) {
	var cpuOut, traceOut *os.File
	cleanup := func() {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			cpuOut.Close()
		}
		if traceOut != nil {
			trace.Stop()
			traceOut.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuOut, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if f.Trace != "" {
		traceOut, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceOut); err != nil {
			traceOut.Close()
			traceOut = nil
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		cleanup()
		if f.MemProfile != "" {
			out, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer out.Close()
			runtime.GC() // flush outstanding allocations into the profile
			if err := pprof.WriteHeapProfile(out); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
