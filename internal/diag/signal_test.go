package diag

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestNotifyInterruptDrainStage sends this process a real SIGINT and
// proves the first stage fires: onDrain runs, the context cancels, and
// Interrupted reports true — without the process dying.
func TestNotifyInterruptDrainStage(t *testing.T) {
	drained := make(chan struct{})
	it := NotifyInterrupt(nil, func() { close(drained) }, nil)
	defer it.Stop()
	if it.Interrupted() {
		t.Fatal("Interrupted before any signal")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-it.Context().Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context never canceled after SIGINT")
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("onDrain never ran")
	}
	if !it.Interrupted() {
		t.Error("Interrupted = false after a signal")
	}
}

// TestNotifyInterruptStop proves a clean shutdown: Stop cancels the
// context without marking the run interrupted, and is idempotent.
func TestNotifyInterruptStop(t *testing.T) {
	it := NotifyInterrupt(context.Background(), nil, nil)
	it.Stop()
	select {
	case <-it.Context().Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not cancel the context")
	}
	if it.Interrupted() {
		t.Error("Stop counted as an interrupt")
	}
	it.Stop() // second Stop must not panic
}
