package diag

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
)

// Interrupt is a two-stage SIGINT/SIGTERM handler shared by the
// long-running commands: the first signal requests a graceful drain
// (the returned context is canceled; the caller stops starting new
// work, syncs its journal, and exits cleanly), the second forces the
// process out immediately — the escape hatch when the drain itself is
// stuck.
type Interrupt struct {
	ctx         context.Context
	cancel      context.CancelFunc
	sig         chan os.Signal
	stop        chan struct{}
	stopOnce    sync.Once
	interrupted atomic.Bool
}

// NotifyInterrupt derives a context canceled on the first SIGINT or
// SIGTERM and arms the second-signal force quit. onDrain runs on the
// first signal (announce the drain; may be nil); onForce runs on the
// second, immediately before the process exits with status 130 (the
// conventional fatal-signal code; may be nil). parent may be nil for
// context.Background. Call Stop to release the handler once the run
// ends on its own.
func NotifyInterrupt(parent context.Context, onDrain, onForce func()) *Interrupt {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	it := &Interrupt{ctx: ctx, cancel: cancel, sig: make(chan os.Signal, 2), stop: make(chan struct{})}
	signal.Notify(it.sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-it.sig:
		case <-it.stop:
			return
		}
		it.interrupted.Store(true)
		if onDrain != nil {
			onDrain()
		}
		cancel()
		select {
		case <-it.sig:
		case <-it.stop:
			return
		}
		if onForce != nil {
			onForce()
		}
		os.Exit(130)
	}()
	return it
}

// Context is canceled on the first interrupt (or when Stop is called).
func (it *Interrupt) Context() context.Context { return it.ctx }

// Interrupted reports whether a signal (not Stop) canceled the context
// — the caller's cue to exit 0 with a resume hint instead of treating
// the cancellation as a failure.
func (it *Interrupt) Interrupted() bool { return it.interrupted.Load() }

// Stop releases the signal handler and cancels the context. Safe to
// call more than once; after Stop, signals revert to default handling.
func (it *Interrupt) Stop() {
	it.stopOnce.Do(func() {
		signal.Stop(it.sig)
		close(it.stop)
	})
	it.cancel()
}
