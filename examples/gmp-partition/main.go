// gmp-partition: partition a five-machine group membership cluster into
// {compsun1-3} and {compsun4,5}, watch two disjoint groups form, heal the
// network, and watch a single all-machine group re-form — the paper's
// Experiment 2 (Table 6).
//
// Run: go run ./examples/gmp-partition
package main

import (
	"fmt"
	"os"
	"time"

	"pfi/internal/gmp"
	"pfi/internal/netsim"
	"pfi/internal/rudp"
	"pfi/internal/stack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	names := []string{"compsun1", "compsun2", "compsun3", "compsun4", "compsun5"}
	w := netsim.NewWorld(7)
	daemons := make(map[string]*gmp.Daemon, len(names))
	for _, name := range names {
		node, err := w.AddNode(name)
		if err != nil {
			return err
		}
		net := rudp.NewLayer(node.Env())
		node.SetStack(stack.New(node.Env(), net))
		gmd, err := gmp.New(node.Env(), net, names)
		if err != nil {
			return err
		}
		daemons[name] = gmd
	}
	if err := w.ConnectAll(netsim.LinkConfig{Latency: 2 * time.Millisecond}); err != nil {
		return err
	}
	for _, name := range names {
		daemons[name].Start()
	}

	show := func(when string) {
		fmt.Printf("--- %s (t=%v)\n", when, w.Now())
		for _, name := range names {
			d := daemons[name]
			role := ""
			if d.IsLeader() {
				role = "  <- leader"
			}
			fmt.Printf("  %s: %v%s\n", name, d.Group(), role)
		}
		fmt.Println()
	}

	w.RunFor(2 * time.Minute)
	show("after startup: one group")

	fmt.Println(">>> partitioning {compsun1-3} | {compsun4,5}")
	w.Partition([]string{"compsun1", "compsun2", "compsun3"}, []string{"compsun4", "compsun5"})
	w.RunFor(2 * time.Minute)
	show("under partition: two disjoint groups")

	fmt.Println(">>> healing the partition")
	w.Heal()
	w.RunFor(3 * time.Minute)
	show("after heal: merged back into one group")
	return nil
}
