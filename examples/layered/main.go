// layered: the PFI technique is layer-agnostic — "no distinction between
// application-level protocols, interprocess communication protocols,
// network protocols, or device layer protocols." Here the same fault
// injector that manipulated TCP segments and GMP datagrams is spliced
// BELOW a fragmentation layer, where it sees (and kills) individual
// fragments that the application above never knows exist.
//
// app ──▶ frag (splits 2000 bytes into 4 fragments)
//
//	──▶ PFI (drops exactly one fragment of the second message)
//	        ──▶ wire
//
// Run: go run ./examples/layered
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"pfi/internal/core"
	"pfi/internal/frag"
	"pfi/internal/message"
	"pfi/internal/netsim"
	"pfi/internal/stack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	w := netsim.NewWorld(8)
	var fragLayers []*frag.Layer
	var pfiLayers []*core.Layer
	var received [][]byte
	for _, name := range []string{"sender", "receiver"} {
		node, err := w.AddNode(name)
		if err != nil {
			return err
		}
		fl, err := frag.NewLayer(node.Env(), frag.WithMTU(512+frag.HeaderLen))
		if err != nil {
			return err
		}
		pl := core.NewLayer(node.Env())
		s := stack.New(node.Env(), fl, pl)
		s.OnDeliver(func(m *message.Message) error {
			received = append(received, m.CopyBytes())
			return nil
		})
		node.SetStack(s)
		fragLayers = append(fragLayers, fl)
		pfiLayers = append(pfiLayers, pl)
	}
	if err := w.Connect("sender", "receiver", netsim.LinkConfig{Latency: time.Millisecond}); err != nil {
		return err
	}

	// The fault: of the second message's four fragments, kill the third.
	// Fragments 1-4 belong to message one, 5-8 to message two.
	if err := pfiLayers[0].SetSendScript(`
		if {![info exists n]} { set n 0 }
		incr n
		if {$n == 7} {
			log "killing fragment $n"
			xDrop cur_msg
		}
	`); err != nil {
		return err
	}

	send := func(fill byte) error {
		m := message.New(bytes.Repeat([]byte{fill}, 2000)) // 4 fragments
		m.SetAttr(netsim.AttrDst, "receiver")
		node, _ := w.Node("sender")
		return node.Stack().Send(m)
	}
	fmt.Println("sending two 2000-byte messages (4 fragments each);")
	fmt.Println("the PFI layer below frag kills fragment 7 (message two, fragment 3)")
	if err := send('A'); err != nil {
		return err
	}
	if err := send('B'); err != nil {
		return err
	}
	w.RunFor(5 * time.Second) // before the 30 s reassembly timeout

	fmt.Printf("\nreceiver got %d complete message(s):\n", len(received))
	for _, msg := range received {
		fmt.Printf("  %d bytes of %q\n", len(msg), msg[0])
	}
	st := fragLayers[1].Stats()
	fmt.Printf("\nreceiver frag stats: %d fragments received, %d reassembled, %d pending\n",
		st.FragmentsRecv, st.Reassembled, fragLayers[1].PendingReassemblies())
	fmt.Println("message two waits for its missing fragment until the reassembly timeout fires")
	w.RunFor(time.Minute)
	fmt.Printf("after the timeout: %d pending, %d timed out\n",
		fragLayers[1].PendingReassemblies(), fragLayers[1].Stats().TimedOut)
	return nil
}
