// test-campaign: automatically generate a fault-injection test suite from
// a protocol specification — the paper's future-work item (ii) — and sweep
// it over a live GMP cluster.
//
// The specification is just the protocol's message types and the fault
// vocabulary; the generator emits one deterministic filter script per
// (type × fault × direction) case. Each case is applied to one daemon's
// PFI layer and the cluster is checked for its core promise: the two
// unfaulted daemons converge to a common view containing them both.
//
// The sweep runs twice — serially, then across a worker pool — and prints
// the speedup, so the example doubles as a smoke benchmark for the
// parallel campaign engine.
//
// Run: go run ./examples/test-campaign [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pfi/internal/campaign"
	"pfi/internal/core"
	"pfi/internal/gmp"
	"pfi/internal/harden"
	"pfi/internal/netsim"
	"pfi/internal/rudp"
	"pfi/internal/stack"
)

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size for the parallel sweep")
	flag.Parse()
	if err := run(*workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(workers int) error {
	spec := campaign.Spec{
		Protocol: "gmp",
		Types:    []string{"HEARTBEAT", "MEMBERSHIP_CHANGE", "ACK", "COMMIT"},
		Faults:   []campaign.FaultKind{campaign.Drop, campaign.Delay, campaign.Duplicate},
	}
	cases, err := campaign.Generate(spec)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d test scripts from the %s specification, e.g.:\n\n",
		len(cases), spec.Protocol)
	fmt.Println(cases[0].Name + ":")
	fmt.Print("  " + cases[0].Script)
	fmt.Println()

	verdicts, serialStats, err := campaign.Run(spec, gmpScenario)
	if err != nil {
		return err
	}
	fmt.Print(campaign.Summary(verdicts, serialStats))
	if fails := campaign.Failures(verdicts); len(fails) > 0 {
		return fmt.Errorf("%d cases broke the healthy-pair invariant", len(fails))
	}
	fmt.Println("\nthe healthy pair converged under every generated fault")

	// Sweep again through the worker pool: same verdicts, less wall clock.
	parallel, parStats, err := campaign.RunParallel(spec, gmpScenario, campaign.Options{Workers: workers})
	if err != nil {
		return err
	}
	for i := range parallel {
		if parallel[i].Case.Name != verdicts[i].Case.Name ||
			parallel[i].OK != verdicts[i].OK || parallel[i].Note != verdicts[i].Note {
			return fmt.Errorf("parallel sweep diverged from serial at %q", parallel[i].Case.Name)
		}
	}
	fmt.Printf("\nserial:   %s\nparallel: %s\n", serialStats, parStats)
	fmt.Printf("speedup with %d workers: %.2fx (identical verdicts)\n",
		parStats.Workers, serialStats.Elapsed.Seconds()/parStats.Elapsed.Seconds())
	return nil
}

// gmpScenario boots a fresh 3-daemon cluster, faults gmd3's traffic per
// the case, and checks that gmd1 and gmd2 still share a view.
func gmpScenario(_ *harden.Monitor, c campaign.Case) (bool, string, error) {
	names := []string{"gmd1", "gmd2", "gmd3"}
	w := netsim.NewWorld(2026)
	daemons := map[string]*gmp.Daemon{}
	var victim *core.Layer
	for _, name := range names {
		node, err := w.AddNode(name)
		if err != nil {
			return false, "", err
		}
		net := rudp.NewLayer(node.Env())
		pfi := core.NewLayer(node.Env(), core.WithStub(gmp.PFIStub{}))
		node.SetStack(stack.New(node.Env(), net, pfi))
		gmd, err := gmp.New(node.Env(), net, names)
		if err != nil {
			return false, "", err
		}
		daemons[name] = gmd
		if name == "gmd3" {
			victim = pfi
		}
	}
	if err := w.ConnectAll(netsim.LinkConfig{Latency: 2 * time.Millisecond}); err != nil {
		return false, "", err
	}
	if err := c.Apply(victim); err != nil {
		return false, "", err
	}
	for _, n := range names {
		daemons[n].Start()
	}
	w.RunFor(3 * time.Minute)

	g1, g2 := daemons["gmd1"].Group(), daemons["gmd2"].Group()
	if !g1.Equal(g2) {
		return false, fmt.Sprintf("views diverged: %v vs %v", g1, g2), nil
	}
	if !g1.Contains("gmd1") || !g1.Contains("gmd2") {
		return false, fmt.Sprintf("healthy daemons missing from %v", g1), nil
	}
	return true, g1.String(), nil
}
