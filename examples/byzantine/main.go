// byzantine: subject a three-machine group membership cluster to arbitrary
// (byzantine) faults — probabilistic corruption, duplication, and
// reordering of one member's traffic — using the failure-model library
// from Section 2.2, and check whether view agreement survives.
//
// The fault plan compiles to Tcl filter scripts; nothing in the GMP code
// is touched. The protocol's defence is its message framing (corrupt
// packets fail to decode and are dropped) and the reliability layer's
// dedup (duplicates are suppressed), so agreement holds: every committed
// multi-member view generation is identical across daemons.
//
// Run: go run ./examples/byzantine
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"pfi/internal/core"
	"pfi/internal/fault"
	"pfi/internal/gmp"
	"pfi/internal/netsim"
	"pfi/internal/rudp"
	"pfi/internal/stack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	names := []string{"gmd1", "gmd2", "gmd3"}
	w := netsim.NewWorld(13)
	daemons := make(map[string]*gmp.Daemon, len(names))
	pfis := make(map[string]*core.Layer, len(names))
	type commit struct {
		node string
		view gmp.Group
	}
	var commits []commit
	for _, name := range names {
		node, err := w.AddNode(name)
		if err != nil {
			return err
		}
		net := rudp.NewLayer(node.Env())
		pfi := core.NewLayer(node.Env(), core.WithStub(gmp.PFIStub{}))
		node.SetStack(stack.New(node.Env(), net, pfi))
		gmd, err := gmp.New(node.Env(), net, names)
		if err != nil {
			return err
		}
		name := name
		gmd.OnCommit(func(g gmp.Group) {
			commits = append(commits, commit{node: name, view: g})
		})
		daemons[name] = gmd
		pfis[name] = pfi
	}
	if err := w.ConnectAll(netsim.LinkConfig{Latency: 2 * time.Millisecond}); err != nil {
		return err
	}
	for _, name := range names {
		daemons[name].Start()
	}
	w.RunFor(time.Minute)
	fmt.Println("converged:", daemons["gmd1"].Group())

	// Byzantine plan: 30% of gmd3's traffic (both directions) is
	// corrupted, duplicated, or reordered, for five minutes.
	plan := fault.Plan{
		Model:     fault.Byzantine,
		Prob:      0.3,
		Duration:  5 * time.Minute,
		Corrupt:   true,
		Duplicate: true,
		Reorder:   true,
	}
	send, recv, err := plan.Scripts()
	if err != nil {
		return err
	}
	fmt.Println("\ncompiled byzantine send-filter script:")
	for _, line := range strings.Split(strings.TrimSpace(send), "\n") {
		fmt.Println("   ", line)
	}
	_ = recv
	if err := plan.Apply(pfis["gmd3"]); err != nil {
		return err
	}
	w.RunFor(6 * time.Minute)

	// Agreement check: all multi-member views committed for a generation
	// must be identical.
	fmt.Println("\ncommitted views during the byzantine storm:")
	byGen := map[uint32]map[string]bool{}
	for _, c := range commits {
		if len(c.view.Members) < 2 {
			continue
		}
		key := strings.Join(c.view.Members, ",")
		if byGen[c.view.Gen] == nil {
			byGen[c.view.Gen] = map[string]bool{}
		}
		byGen[c.view.Gen][key] = true
		fmt.Printf("  %s committed %v\n", c.node, c.view)
	}
	violations := 0
	for gen, sets := range byGen {
		if len(sets) > 1 {
			violations++
			fmt.Printf("  AGREEMENT VIOLATION at generation %d: %v\n", gen, sets)
		}
	}
	st := pfis["gmd3"].SendFilter().Stats()
	fmt.Printf("\ngmd3 send filter: %d seen, %d duplicated, %d held/reordered\n",
		st.Seen, st.Duplicated, st.Held)
	if violations == 0 {
		fmt.Println("agreement held: every generation's multi-member view was identical everywhere")
	}
	fmt.Println("final views:")
	for _, name := range names {
		fmt.Printf("  %s: %v\n", name, daemons[name].Group())
	}
	return nil
}
