// Quickstart: script-driven fault injection in ~60 lines.
//
// We build a two-layer stack — a toy protocol on top, a PFI layer below —
// and install the paper's flagship receive-filter script: drop all ACK
// messages. Then we deliver a mixed stream and watch only the non-ACKs
// survive.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"strconv"

	"pfi/internal/core"
	"pfi/internal/message"
	"pfi/internal/simtime"
	"pfi/internal/stack"
)

// toyStub recognizes a one-byte-type protocol: 1=ACK, 2=NACK, 4=GACK.
type toyStub struct{}

func (toyStub) Protocol() string { return "toy" }

func (toyStub) Recognize(m *message.Message) (core.Info, error) {
	b, err := m.ByteAt(0)
	if err != nil {
		return core.Info{}, err
	}
	types := map[byte]string{1: "ACK", 2: "NACK", 4: "GACK"}
	typ, ok := types[b]
	if !ok {
		typ = "DATA"
	}
	return core.Info{Type: typ, Fields: map[string]string{
		"seq": strconv.Itoa(int(b >> 4)),
	}}, nil
}

func (toyStub) Generate(typ string, fields map[string]string) (*message.Message, error) {
	return nil, fmt.Errorf("toy: generation not needed in this example")
}

func main() {
	sched := simtime.NewScheduler()
	env := &stack.Env{Sched: sched, Node: "demo"}

	// The PFI layer with the toy protocol's recognition stub.
	pfi := core.NewLayer(env, core.WithStub(toyStub{}))

	// The paper's example script (Section 3), almost verbatim.
	err := pfi.SetReceiveScript(`
		# Message types are ACK, NACK, and GACK.
		# This script drops all ACK messages.
		set type [msg_type cur_msg]
		if {$type eq "ACK"} {
			xDrop cur_msg
		}
	`)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// A stack with just the PFI layer; the "application" prints arrivals.
	s := stack.New(env, pfi)
	s.OnDeliver(func(m *message.Message) error {
		info, _ := toyStub{}.Recognize(m)
		fmt.Printf("  app received: %s\n", info.Type)
		return nil
	})

	fmt.Println("delivering ACK, NACK, ACK, GACK, ACK from the network:")
	for _, b := range []byte{1, 2, 1, 4, 1} {
		if err := s.Deliver(message.New([]byte{b})); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	st := pfi.ReceiveFilter().Stats()
	fmt.Printf("\nfilter saw %d messages, dropped %d ACKs\n", st.Seen, st.Dropped)
}
