// tcp-retransmit: rediscover the retransmission behaviour of two vendor
// TCP stacks — the way the paper's Experiment 1 did — without touching the
// TCP code, only by black-holing traffic in a PFI filter script.
//
// The SunOS 4.1.3 (BSD) profile retransmits 12 times with exponential
// backoff up to a 64-second plateau, then sends a reset. Solaris 2.3 backs
// off from a ~330 ms floor and abruptly closes after its 9-timeout global
// error budget, without a reset.
//
// Run: go run ./examples/tcp-retransmit
package main

import (
	"fmt"
	"os"
	"time"

	"pfi/internal/core"
	"pfi/internal/netsim"
	"pfi/internal/stack"
	"pfi/internal/tcp"
	"pfi/internal/trace"
)

func main() {
	for _, prof := range []tcp.Profile{tcp.SunOS413(), tcp.Solaris23()} {
		if err := probe(prof); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func probe(prof tcp.Profile) error {
	w := netsim.NewWorld(42)

	// The vendor machine under test.
	vendorNode := w.MustAddNode("vendor")
	vendorLog := trace.NewLog()
	vendorTCP, err := tcp.NewLayer(vendorNode.Env(), prof, tcp.WithTrace(vendorLog))
	if err != nil {
		return err
	}
	vendorNode.SetStack(stack.New(vendorNode.Env(), vendorTCP))

	// Our instrumented machine: TCP with a PFI layer spliced below it.
	xkNode := w.MustAddNode("xkernel")
	xkTCP, err := tcp.NewLayer(xkNode.Env(), tcp.XKernel())
	if err != nil {
		return err
	}
	pfi := core.NewLayer(xkNode.Env(), core.WithStub(tcp.PFIStub{}))
	xkNode.SetStack(stack.New(xkNode.Env(), xkTCP, pfi))

	if err := w.Connect("vendor", "xkernel", netsim.LinkConfig{Latency: 2 * time.Millisecond}); err != nil {
		return err
	}

	// Open a connection and move a little data.
	if err := xkTCP.Listen(80, func(*tcp.Conn) {}); err != nil {
		return err
	}
	conn, err := vendorTCP.Connect("xkernel", 80)
	if err != nil {
		return err
	}
	var closeReason string
	conn.OnClose(func(r string) { closeReason = r })
	w.RunFor(time.Second)

	// The fault: our receive filter silently drops everything.
	if err := pfi.SetReceiveScript(`xDrop cur_msg`); err != nil {
		return err
	}
	if err := conn.Send([]byte("this segment is doomed")); err != nil {
		return err
	}
	w.RunFor(time.Hour)

	rtx := vendorLog.Times("vendor", "retransmit", "DATA")
	report := trace.AnalyzeBackoff(rtx, 0.25)
	fmt.Printf("%s:\n", prof.Name)
	fmt.Printf("  retransmissions: %d\n", len(rtx))
	fmt.Printf("  backoff gaps:   ")
	for _, g := range report.Gaps {
		fmt.Printf(" %.2fs", g.Seconds())
	}
	fmt.Println()
	if report.PlateauReached {
		fmt.Printf("  upper bound:     %.0fs\n", report.Plateau.Seconds())
	} else {
		fmt.Printf("  upper bound:     none established before the close\n")
	}
	resets := len(vendorLog.Filter("vendor", "reset", ""))
	fmt.Printf("  reset sent:      %v\n", resets > 0)
	fmt.Printf("  close reason:    %s\n\n", closeReason)
	return nil
}
