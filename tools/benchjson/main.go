// Command benchjson turns `go test -bench -benchmem` output into the
// checked-in BENCH_*.json format: a host stanza, before/after metric
// blocks, and computed deltas.
//
// Benchmarks whose name ends in the -before-suffix (default "Tree", the
// tree-walking reference engine) land in "before" (keyed without the
// suffix); everything else lands in "after". Usage:
//
//	go test -bench 'FilterProcess|InterpEval' -benchmem -run @ . |
//	    go run ./tools/benchjson -note "..." -out BENCH_script.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type report struct {
	Host struct {
		CPU        string `json:"cpu"`
		Gomaxprocs int    `json:"gomaxprocs"`
		Note       string `json:"note,omitempty"`
	} `json:"host"`
	Before map[string]metrics           `json:"before"`
	After  map[string]metrics           `json:"after"`
	Deltas map[string]map[string]string `json:"deltas"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	note := flag.String("note", "", "host note to embed")
	beforeSuffix := flag.String("before-suffix", "Tree", "benchmark name suffix marking the before/reference variant")
	flag.Parse()

	r := report{
		Before: map[string]metrics{},
		After:  map[string]metrics{},
		Deltas: map[string]map[string]string{},
	}
	r.Host.Gomaxprocs = 1
	r.Host.Note = *note

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			r.Host.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, procs, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if procs > r.Host.Gomaxprocs {
			r.Host.Gomaxprocs = procs
		}
		if base, isBefore := strings.CutSuffix(name, *beforeSuffix); isBefore {
			r.Before[base] = m
		} else {
			r.After[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(r.After) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	for name, after := range r.After {
		before, ok := r.Before[name]
		if !ok {
			continue
		}
		d := map[string]string{}
		d["ns_op"] = delta(before.NsOp, after.NsOp)
		d["b_op"] = delta(float64(before.BOp), float64(after.BOp))
		d["allocs_op"] = delta(float64(before.AllocsOp), float64(after.AllocsOp))
		r.Deltas[name] = d
	}

	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&r); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.WriteString(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one testing benchmark result line:
//
//	BenchmarkName-8   1000000   123.4 ns/op   16 B/op   2 allocs/op
func parseBenchLine(line string) (name string, m metrics, procs int, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", m, 0, false
	}
	name = fields[0]
	procs = 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsOp, seen = v, true
		case "B/op":
			m.BOp = int64(v)
		case "allocs/op":
			m.AllocsOp = int64(v)
		}
	}
	return name, m, procs, seen
}

func delta(before, after float64) string {
	if before == 0 {
		return fmt.Sprintf("%v -> %v", before, after)
	}
	pct := (after - before) / before * 100
	return fmt.Sprintf("%+.0f%% (%v -> %v)", pct, trim(before), trim(after))
}

func trim(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
