package pfi

import (
	"testing"

	"pfi/internal/conformance"
	"pfi/internal/core"
	"pfi/internal/harden"
	"pfi/internal/message"
	"pfi/internal/simtime"
	"pfi/internal/stack"
)

// TestFilterProcessAllocBudget pins the steady-state allocation count of
// the per-message filter path so regressions fail `make check` instead of
// silently eroding campaign throughput. The budget matches the compiled-VM
// number recorded in BENCH_script.json; raise it only with a bench entry
// explaining why.
//
// The race detector instruments allocations, so the budget is only
// meaningful (and only enforced) in normal builds.
func TestFilterProcessAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	const budget = 0 // ISSUE: AOT-optimized hot path must stay allocation-free

	env := &stack.Env{Sched: simtime.NewScheduler(), Node: "alloc"}
	l := core.NewLayer(env, core.WithStub(benchStub{}))
	stk := stack.New(env, l)
	stk.OnTransmit(func(m *message.Message) error { return nil })
	if err := l.SetSendScript(`if {[msg_type cur_msg] eq "DATA"} {
	if {![info exists dropped]} { set dropped 0 }
	if {$dropped < 3} {
		incr dropped
		xDrop cur_msg
	}
}
`); err != nil {
		t.Fatal(err)
	}
	m := message.NewString("payload-0123456789")
	// Warm up: first sends compile the script and grow interpreter stacks.
	for i := 0; i < 16; i++ {
		if err := stk.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := stk.Send(m); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("FilterProcess steady state allocates %.1f/op, budget is %d", avg, budget)
	}
}

// TestFilterProcessBatchAllocBudget pins the batched activation path to the
// same allocation-free steady state as the per-message path: the SoA
// recognition pass and its scratch arrays must reuse across bursts.
func TestFilterProcessBatchAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	const budget = 0 // scratch reuse: batching must not add per-burst garbage

	env := &stack.Env{Sched: simtime.NewScheduler(), Node: "alloc"}
	l := core.NewLayer(env, core.WithStub(benchStub{}))
	stk := stack.New(env, l)
	stk.OnTransmit(func(m *message.Message) error { return nil })
	if err := l.SetSendScript(`if {[msg_type cur_msg] eq "DATA"} {
	if {![info exists dropped]} { set dropped 0 }
	if {$dropped < 3} {
		incr dropped
		xDrop cur_msg
	}
}
`); err != nil {
		t.Fatal(err)
	}
	burst := make([]*message.Message, 16)
	for i := range burst {
		burst[i] = message.NewString("payload-0123456789")
	}
	for i := 0; i < 8; i++ {
		if err := stk.SendBatch(burst); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := stk.SendBatch(burst); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("SendBatch steady state allocates %.1f/burst, budget is %d", avg, budget)
	}
}

// TestWorldForkAllocBudget pins the allocation count of one snapshot-forked
// fuzzing iteration (restore the captured world, run the mutated suffix,
// package the Result). The point of the fork path is that its cost scales
// with the suffix, not the prefix — a ballooning per-fork allocation count
// would quietly hand the prefix work back. The budget tracks the number
// recorded in BENCH_snapshot.json with headroom for runtime variance; raise
// it only with a bench entry explaining why.
func TestWorldForkAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	const budget = 256 // ISSUE: fork+suffix must stay O(suffix), not O(prefix)

	sess, err := conformance.NewSession(forkPrefix, conformance.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: first forks grow interpreter and trace buffers.
	for i := 0; i < 4; i++ {
		if r, ok := sess.Run("alloc-warm", forkSuffix); !ok || r.Outcome != harden.Pass {
			t.Fatalf("warm-up fork not clean: ok=%v", ok)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if r, ok := sess.Run("alloc-fork", forkSuffix); !ok || r.Outcome != harden.Pass {
			t.Fatalf("fork not clean: ok=%v", ok)
		}
	})
	if avg > budget {
		t.Fatalf("WorldFork steady state allocates %.0f/op, budget is %d", avg, budget)
	}
}
