GO ?= go

.PHONY: check vet build test race bench

# check is the full PR gate: vet, build, race-enabled tests, and a
# one-iteration pass over every benchmark so the perf suite always compiles.
check: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run @ ./...
