GO ?= go

.PHONY: check vet build test race bench conformance fuzz goldens

# check is the full PR gate: vet, build, race-enabled tests (the parallel
# conformance runner and campaign pool run under -race via ./...), an
# explicit conformance pass, a short fuzz smoke over the script language,
# and a one-iteration pass over every benchmark so the perf suite always
# compiles.
check: vet build race conformance fuzz bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run @ ./...

# conformance replays every .pfi scenario against its golden trace, serial
# and through the worker pool.
conformance:
	$(GO) test -run Conformance ./internal/conformance/ ./cmd/pfitest/

# fuzz gives each native fuzz target a 10-second smoke. Corpus findings are
# written to testdata/fuzz as usual; run longer locally when touching the
# script parser.
fuzz:
	$(GO) test -run @ -fuzz 'FuzzParse$$' -fuzztime 10s ./internal/script/
	$(GO) test -run @ -fuzz 'FuzzEval$$' -fuzztime 10s ./internal/script/
	$(GO) test -run @ -fuzz 'FuzzEvalExpr$$' -fuzztime 10s ./internal/script/

# goldens re-blesses every pinned artifact: conformance traces and rendered
# experiment tables. Inspect the diff before committing.
goldens:
	$(GO) run ./cmd/pfitest -update
	$(GO) test -run Golden -update ./internal/exp/
