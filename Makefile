GO ?= go

.PHONY: check check-race vet build test race bench bench-raft bench-resume bench-script bench-smoke bench-snapshot conformance fleet fuzz explore goldens harden raft resume snapshot

# check is the full PR gate: vet, build, race-enabled tests (the parallel
# conformance runner and campaign pool run under -race via ./...), an
# explicit conformance pass, a short fuzz smoke over the script language,
# and a one-iteration pass over every benchmark so the perf suite always
# compiles. Allocation budgets (TestFilterProcessAllocBudget and friends)
# run in the non-race `test` pass, so hot-path alloc creep fails the gate.
check: vet build test race conformance fuzz bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check-race is the standalone race gate for CI pipelines that split the
# detector run from the main check.
check-race: race

# bench-smoke runs every benchmark for one iteration so the perf suite
# always compiles and executes; it makes no timing claims.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run @ ./...

# bench measures the script hot path — compiled VM vs the tree-walking
# reference engine (the *Tree benchmarks) — and regenerates
# BENCH_script.json with before/after numbers and deltas.
bench:
	$(GO) test -bench 'FilterProcess|InterpEval' -benchmem -benchtime 2s -count 1 -run @ . | \
		$(GO) run ./tools/benchjson -out BENCH_script.json \
		-note "before = tree-walking reference engine (PFI_SCRIPT_ENGINE=tree), after = compiled register VM, same host and run; PR 1 tree-walker baseline for BenchmarkFilterProcess was 962 ns/op, 116 B/op, 6 allocs/op"

# bench-script is the CI smoke over the script hot path: the filter and
# interpreter benchmarks at a fixed small iteration count (no timing
# claims — CI machines are noisy) plus the allocation budgets, so a change
# that re-introduces per-message garbage on the AOT-optimized path fails
# the job even when it is too small to move wall-clock numbers.
bench-script:
	$(GO) test -bench 'FilterProcess|InterpEval' -benchmem -benchtime 100x -run @ .
	$(GO) test -run 'AllocBudget' -count 1 -v .

# conformance replays every .pfi scenario against its golden trace, serial
# and through the worker pool.
conformance:
	$(GO) test -run Conformance ./internal/conformance/ ./cmd/pfitest/

# fleet exercises the sharded-campaign coordinator under the race
# detector: the determinism battery (fleet sweeps and fleet fuzzing
# byte-identical to single-process at 1/2/4 spawned worker processes),
# the control-plane fault-injection tests (kill -9 mid-batch, lease
# stalls, truncated and garbage results, version skew), and the shard
# planner and wire-protocol goldens.
fleet:
	$(GO) test -race ./internal/fleet/

# fuzz gives each native fuzz target a 10-second smoke. Corpus findings are
# written to testdata/fuzz as usual; run longer locally when touching the
# script parser or compiler. FuzzCompiledParity is the differential oracle
# for the register VM: tree-walker and compiled program must agree
# byte-for-byte on result, error text, and output. FuzzJournalParse
# hammers the write-ahead log's frame parser with hostile bytes — the
# recovery scan must never panic, loop, or accept a corrupt frame.
fuzz:
	$(GO) test -run @ -fuzz 'FuzzParse$$' -fuzztime 10s ./internal/script/
	$(GO) test -run @ -fuzz 'FuzzEval$$' -fuzztime 10s ./internal/script/
	$(GO) test -run @ -fuzz 'FuzzEvalExpr$$' -fuzztime 10s ./internal/script/
	$(GO) test -run @ -fuzz 'FuzzCompiledParity$$' -fuzztime 10s ./internal/script/
	$(GO) test -run @ -fuzz 'FuzzJournalParse$$' -fuzztime 10s ./internal/journal/

# resume proves the crash-safety battery under the race detector: the
# write-ahead journal's torn-tail recovery and format goldens, campaign
# and fuzz journal/resume determinism, the durable fleet queue, worker
# reconnect re-adoption across a coordinator restart, the crash-safety
# /metrics counters, the two-stage interrupt helper, and the
# process-level SIGKILL + -resume byte-identity batteries for pfifuzz
# (1 and 4 workers) and pficampaign (pool, and fleet coordinator restart
# at 2 and 4 real spawned worker processes).
resume:
	$(GO) test -race ./internal/journal/ ./internal/diag/
	$(GO) test -race -run 'Journal|Resume|Queue|Reconnect|Streamed|CellStreaming|Metrics' \
		./internal/campaign/ ./internal/explore/ ./internal/fleet/
	$(GO) test -race -run 'KillResume' ./cmd/pfifuzz/ ./cmd/pficampaign/

# explore runs a pinned-seed coverage-guided fuzz over the fault-schedule
# space (~30s): a deterministic smoke that the explorer still converges and
# that its known finding (silent corruption — the simulated TCP has no
# checksum) is rediscovered and shrunk. Repros land in a throwaway dir;
# promote one by copying it plus its golden into
# internal/conformance/testdata/found/.
explore:
	$(GO) run ./cmd/pfifuzz -seed 1 -budget 1000 -workers 4 -q -out $$(mktemp -d /tmp/pfifuzz.XXXXXX)

# harden exercises the run-isolation layer under the race detector: the
# harden package's watchdog/budget/retry edge cases plus the containment
# and worker-invariance regressions it feeds in campaign, conformance,
# explore, and interpose (quarantine replay, crash/livelock sweeps,
# graceful drain).
harden:
	$(GO) test -race ./internal/harden/
	$(GO) test -race -run 'ForEach|Sweep|Quarantin|Runaway|TraceBudget|ZeroConfig|ContainedFailures|EvaluateContains|Drain|Oversized' \
		./internal/campaign/ ./internal/conformance/ ./internal/explore/ ./internal/interpose/

# snapshot proves the world-snapshot fast path is invisible, under the race
# detector: session forks byte-identical to fresh replays across every
# vendor profile and world kind, and a snapshots-on exploration bit-identical
# to snapshots-off at 1/4/8 workers.
snapshot:
	$(GO) test -race -run 'TestSession|TestShell' ./internal/conformance/
	$(GO) test -race -run 'TestFuzzSnapshot|TestSplitStatements|TestCommonStatements' ./internal/explore/

# raft runs the consensus suite under the race detector: the raft package
# unit and property tests, the rig scale tests, the conformance raft
# scenarios against their goldens, the explore safety-oracle self-tests
# (both seeded bugs caught at generation zero, bug-free seeds
# violation-free), and the 1/4/8-worker scale determinism battery.
raft:
	$(GO) test -race ./internal/raft/
	$(GO) test -race -run 'Raft' ./internal/exp/ ./internal/explore/ .
	$(GO) test -race -run 'Conformance' ./internal/conformance/

# bench-raft measures the consensus scale battery's denominator — the cost
# of one simulated scheduler step in an elected, heartbeat-steady raft
# world at 100 vs 1000 nodes — and regenerates BENCH_raft.json.
bench-raft:
	$(GO) test -bench 'BenchmarkRaftStep' -benchmem -benchtime 2s -count 1 -run @ . | \
		$(GO) run ./tools/benchjson -out BENCH_raft.json \
		-note "one op = one simulated scheduler step in a steady-state raft world after leader election; RaftStep100 = 100 nodes, RaftStep1000 = 1000 nodes; near-flat ns/op across the 10x cluster scale shows per-step cost is dominated by per-message work, not cluster bookkeeping"

# bench-resume measures the crash-safety tax: the same 1,008-cell sweep
# with every completed cell banked to the write-ahead log (including the
# final fsync) vs no journal at all, and regenerates BENCH_resume.json.
# The budget is <2% — the per-cell append is a few microseconds of JSON
# and one buffered write against hundreds of microseconds of cell work.
bench-resume:
	$(GO) test -bench 'BenchmarkResumeSweep' -benchmem -benchtime 5x -count 1 -run @ ./internal/campaign/ | \
		$(GO) run ./tools/benchjson -out BENCH_resume.json -before-suffix Bare \
		-note "before = BenchmarkResumeSweepBare (identical 1,008-cell sweep, no journal), after = BenchmarkResumeSweep (every completed cell banked to the write-ahead log as it lands, plus final fsync), same host and run, serial workers for stable timing; the delta is the whole crash-safety tax and is budgeted <2% — CPU profiles attribute <0.5% to journaling, so most of any measured gap is run-to-run scheduler noise"

# bench-snapshot measures one fuzzing iteration served by a world fork vs a
# full fresh-world replay of the same scenario, and regenerates
# BENCH_snapshot.json with before/after numbers and deltas.
bench-snapshot:
	$(GO) test -bench 'BenchmarkWorldFork' -benchmem -benchtime 2s -count 1 -run @ . | \
		$(GO) run ./tools/benchjson -out BENCH_snapshot.json -before-suffix Replay \
		-note "before = BenchmarkWorldForkReplay (fresh world replays the full 240s-sim lossy prefix plus suffix per candidate), after = BenchmarkWorldFork (restore captured world in place, execute only the mutated suffix), same host and run; prefix-heavy corpora see the full ratio, pfifuzz hit-rate bounds the realized speedup"

# goldens re-blesses every pinned artifact: conformance traces and rendered
# experiment tables. Inspect the diff before committing.
goldens:
	$(GO) run ./cmd/pfitest -update
	$(GO) test -run Golden -update ./internal/exp/
